// Custom assay: parses a user-defined protocol from the mfsynth text
// format (from a file argument, or a built-in two-stage sample-prep assay)
// and compares the traditional dedicated-device design with the
// dynamic-device synthesis.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"mfsynth"
)

// builtin is a two-stage sample preparation protocol in the text format.
const builtin = `
# Two-stage sample preparation with a detection step.
assay sampleprep
op plasma   input
op reagentA input
op reagentB input
op bufferA  input
op bufferB  input
op lyse     mix 6
op bind     mix 6
op wash1    mix 6
op wash2    mix 6
op read     detect 4
op waste    output
edge plasma   lyse  4
edge reagentA lyse  4
edge lyse     bind  4
edge reagentB bind  4
edge bind     wash1 3
edge bufferA  wash1 3
edge wash1    wash2 2
edge bufferB  wash2 2
edge wash2    read  4
edge read     waste 4
`

func main() {
	log.SetFlags(0)

	text := builtin
	if len(os.Args) > 1 {
		data, err := os.ReadFile(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		text = string(data)
	}
	a, err := mfsynth.ParseAssay(strings.NewReader(text))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assay %s: %s operations\n\n", a.Name, a.Stats())

	// Build a one-mixer-per-size traditional policy for the assay.
	c := mfsynth.Case{Assay: a, GridSize: 12, Detectors: a.CountKind(mfsynth.Detect), BaseMixers: map[int]int{}}
	for _, id := range a.MixOps() {
		c.BaseMixers[a.Volume(id)] = 1
	}
	des, err := mfsynth.Traditional(c, 1, mfsynth.DefaultCost)
	if err != nil {
		log.Fatal(err)
	}
	res, err := mfsynth.Synthesize(a, mfsynth.Options{
		Policy: mfsynth.Resources{Mixers: des.Mixers, Detectors: c.Detectors},
		Place:  mfsynth.PlaceConfig{Grid: c.GridSize},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("schedule:")
	fmt.Println(res.Schedule.Gantt())
	fmt.Printf("traditional design: vs_tmax=%d with %d valves (#m %s)\n",
		des.VsTmax, des.Valves, des.MixVector())
	fmt.Printf("dynamic devices:    vs1=%d(%d) vs2=%d(%d) with %d valves\n",
		res.VsMax1, res.VsPump1, res.VsMax2, res.VsPump2, res.UsedValves)
	fmt.Printf("lifetime gain:      %.1fx (setting 1), %.1fx (setting 2)\n",
		float64(des.VsTmax)/float64(res.VsMax1), float64(des.VsTmax)/float64(res.VsMax2))
	fmt.Println()
	fmt.Println("final chip:")
	fmt.Println(res.Snapshot(res.Schedule.Makespan))
}
