// Dilution study: evaluates the two dilution benchmarks of Table 1 across
// the three policies, and shows how a parametric serial-dilution chain
// behaves as it grows — the workload class the paper's introduction
// motivates (dilution preparation burns the most mixing operations).
package main

import (
	"flag"
	"fmt"
	"log"

	"mfsynth"
)

func main() {
	log.SetFlags(0)
	full := flag.Bool("full", false, "use the rolling-horizon ILP mapper (slower, stronger)")
	flag.Parse()

	mode := mfsynth.GreedyPlace
	if *full {
		mode = mfsynth.RollingHorizon
	}

	fmt.Println("Table 1, dilution benchmarks:")
	var rows []*mfsynth.Table1Row
	for _, name := range []string{"InterpolatingDilution", "ExponentialDilution"} {
		c, err := mfsynth.CaseByName(name)
		if err != nil {
			log.Fatal(err)
		}
		for p := 1; p <= 3; p++ {
			row, err := mfsynth.EvaluateRow(c, p, mfsynth.Table1RowOptions{Mode: mode})
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, row)
		}
	}
	fmt.Println(mfsynth.RenderTable1(rows))

	fmt.Println("growing a serial 1:1 dilution chain (greedy mapper, 12x12 chip):")
	fmt.Printf("%8s %10s %10s %8s\n", "steps", "vs1max", "vs2max", "#valves")
	for steps := 2; steps <= 10; steps += 2 {
		vols := make([]int, steps)
		for i := range vols {
			step := i / 2
			if step > 3 {
				step = 3
			}
			vols[i] = 10 - 2*step // 10,10,8,8,6,6,4,4,... (non-increasing)
		}
		a := mfsynth.SerialDilution(fmt.Sprintf("chain%d", steps), vols)
		res, err := mfsynth.Synthesize(a, mfsynth.Options{
			Place: mfsynth.PlaceConfig{Grid: 12, Mode: mfsynth.GreedyPlace},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %6d(%2d) %6d(%2d) %8d\n",
			steps, res.VsMax1, res.VsPump1, res.VsMax2, res.VsPump2, res.UsedValves)
	}
}
