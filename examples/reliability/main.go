// Reliability study: synthesizes a benchmark, then runs the full analysis
// suite on the result — service-life estimation (how many assay runs until
// the first valve wears out), wear balance, control-layer synthesis, and
// cross-contamination risk. Optionally writes the chip layout as SVG.
//
//	go run ./examples/reliability [case] [layout.svg]
package main

import (
	"fmt"
	"log"
	"os"

	"mfsynth"
)

func main() {
	log.SetFlags(0)

	name := "PCR"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	c, err := mfsynth.CaseByName(name)
	if err != nil {
		log.Fatal(err)
	}
	des, err := mfsynth.Traditional(c, 1, mfsynth.DefaultCost)
	if err != nil {
		log.Fatal(err)
	}
	res, err := mfsynth.Synthesize(c.Assay, mfsynth.Options{
		Policy: mfsynth.Resources{Mixers: des.Mixers, Detectors: c.Detectors},
		Place:  mfsynth.PlaceConfig{Grid: c.GridSize},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s synthesized: %s\n\n", name, res)

	// Service life: repetitions until the first valve exceeds its rated
	// 4000 actuations, plus a probabilistic survival curve.
	model := mfsynth.WearModel{RatedActuations: 4000}
	trad := mfsynth.TraditionalActuationCounts(des)
	ours := mfsynth.ChipActuationCounts(res)
	rt := model.RunsToFirstWearout(trad)
	ro := model.RunsToFirstWearout(ours)
	fmt.Println("service life (rated 4000 actuations/valve):")
	fmt.Printf("  traditional design: %3d assay runs (wear balance %.2f)\n", rt, mfsynth.WearBalance(trad))
	fmt.Printf("  dynamic devices:    %3d assay runs (wear balance %.2f)\n", ro, mfsynth.WearBalance(ours))
	fmt.Printf("  lifetime gain:      %.2fx\n\n", float64(ro)/float64(rt))

	fmt.Println("survival probability of the dynamic chip:")
	for _, runs := range []int{ro / 2, ro, ro * 3 / 2} {
		fmt.Printf("  after %3d runs: %.3f\n", runs, model.SurvivalProb(ours, runs))
	}
	fmt.Println()

	// Control layer.
	ca := mfsynth.AnalyzeControl(res)
	lay := mfsynth.RouteControlLayer(res, ca)
	fmt.Printf("%s\n", ca)
	fmt.Printf("control layer: %d/%d channel trees routed, %d extra pins, total channel length %d\n\n",
		lay.Routed, lay.Routed+lay.Failed, lay.ExtraPins, lay.TotalLength)

	// Contamination and the cost of washing it away.
	rep := mfsynth.AnalyzeContamination(res)
	fmt.Printf("%s\n", rep)
	for i, r := range rep.Risks {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(rep.Risks)-5)
			break
		}
		fmt.Printf("  t=%2d valve %v: residue of %s joins %s\n",
			r.At, r.Cell, res.Assay.Op(r.Prev).Name, res.Assay.Op(r.Next).Name)
	}
	plan := mfsynth.PlanWashes(res)
	fmt.Printf("wash plan: %d flushes clear %d of %d risks; +%d actuations, vs1max %d -> %d\n",
		len(plan.Washes), plan.Cleared, plan.Cleared+plan.Uncleared,
		plan.ExtraActuations, plan.VsMax1Before, plan.VsMax1After)

	if len(os.Args) > 2 {
		f, err := os.Create(os.Args[2])
		if err != nil {
			log.Fatal(err)
		}
		if err := mfsynth.WriteSVG(f, res, mfsynth.SVGOptions{At: -1, ControlLayer: &lay}); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s (flow + control layers)\n", os.Args[2])
	}
}
