// Command mfsynth runs the reliability-aware synthesis on a benchmark or a
// user assay and prints the resulting metrics, schedule and chip snapshots.
//
// Usage:
//
//	mfsynth -case PCR -policy 1 -snapshots
//	mfsynth -assay my_assay.txt -grid 14 -mode greedy -gantt
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"mfsynth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mfsynth: ")

	var (
		caseName   = flag.String("case", "PCR", "benchmark case: "+strings.Join(mfsynth.CaseNames(), ", "))
		assayFile  = flag.String("assay", "", "assay file in the mfsynth text format (overrides -case)")
		policy     = flag.Int("policy", 1, "traditional-design policy index (1-3), fixes the input schedule")
		grid       = flag.Int("grid", 0, "valve matrix side length (0 = case default)")
		mode       = flag.String("mode", "rolling", "mapper: rolling, monolithic, greedy")
		gantt      = flag.Bool("gantt", false, "print the scheduling result as a Gantt chart")
		snapshots  = flag.Bool("snapshots", false, "print Fig. 10-style chip snapshots")
		compare    = flag.Bool("compare", true, "print the traditional-design comparison")
		svgOut     = flag.String("svg", "", "write the chip layout as SVG to this file")
		dotOut     = flag.String("dot", "", "write the assay graph as Graphviz DOT to this file")
		workers    = flag.Int("workers", 0, "synthesis worker count (0 = all CPUs, 1 = serial; results are identical)")
		traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON of the synthesis run to this file (load in chrome://tracing or Perfetto)")
		eventsOut  = flag.String("events", "", "write the span/metric event stream as JSON lines to this file")
		stats      = flag.Bool("stats", false, "print the span tree and metrics summary to stderr")
		httpAddr   = flag.String("http", "", "serve live debug endpoints on this address while running: /metrics, /progress (SSE), /debug/pprof, /debug/vars (e.g. :8080)")
		profDir    = flag.String("profile-dir", "", "capture continuous profiles into this directory: whole-run cpu.pprof plus per-phase heap snapshots")
		progLog    = flag.String("progress-log", "", "write live progress snapshots as JSON lines to this file (validate with tracecheck -progress)")
		doVerify   = flag.Bool("verify", false, "audit the result against the full conformance catalogue; exit non-zero on violations")
		faultFile  = flag.String("faults", "", "fault-spec file: defective valves the synthesis must work around")
		faultSeed  = flag.Int64("fault-seed", 0, "generate a random fault set with this seed (with -fault-rate)")
		faultRate  = flag.Float64("fault-rate", 0, "per-valve defect probability for -fault-seed (e.g. 0.05)")
		backends   = flag.String("backends", "", "anytime backend portfolio in priority order, e.g. ilp,greedy,anneal (empty = single pipeline per -mode)")
		annealSeed = flag.Int64("anneal-seed", 0, "simulated-annealing base seed (0 = default 1; same seed, same mapping)")
		annealReps = flag.Int("anneal-replicates", 0, "simulated-annealing restarts (0 = default 8)")
		deadline   = flag.Duration("deadline", 0, "synthesis wall-clock budget, e.g. 30s (0 = none); with -backends the portfolio returns its best result by then")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the synthesis through the context rather than
	// killing the process: the run returns a structured error and the sink
	// flushing below still happens, so a trace or events file from an
	// interrupted run is valid up to the cut.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var tr *mfsynth.Trace
	if *traceOut != "" || *eventsOut != "" || *stats ||
		*httpAddr != "" || *profDir != "" || *progLog != "" {
		tr = mfsynth.NewTrace()
	}

	if *httpAddr != "" {
		srv, err := mfsynth.Serve(*httpAddr, tr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("debug server on http://%s (/metrics /progress /debug/pprof)\n", srv.Addr())
	}
	var stopProgress func() error
	if *progLog != "" {
		f, err := os.Create(*progLog)
		if err != nil {
			log.Fatal(err)
		}
		stop := mfsynth.LogProgress(tr, f)
		stopProgress = func() error {
			err := stop()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			return err
		}
	}
	var prof *mfsynth.Profiler
	if *profDir != "" {
		var err error
		prof, err = mfsynth.StartProfiler(*profDir, tr)
		if err != nil {
			log.Fatal(err)
		}
	}

	// The synthesis body runs inside a closure so every exit path — success,
	// error, or signal cancellation — falls through to the sink flushing
	// below instead of log.Fatal-ing past it.
	run := func() error {
		placeMode, err := parseMode(*mode)
		if err != nil {
			return err
		}
		portfolio, err := mfsynth.ParseBackends(*backends)
		if err != nil {
			return err
		}
		annealOpts := mfsynth.AnnealOptions{Seed: *annealSeed, Replicates: *annealReps}
		if *deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *deadline)
			defer cancel()
		}

		var c mfsynth.Case
		if *assayFile != "" {
			f, err := os.Open(*assayFile)
			if err != nil {
				return err
			}
			a, err := mfsynth.ParseAssay(f)
			f.Close()
			if err != nil {
				return err
			}
			c = mfsynth.Case{Assay: a, GridSize: 12, BaseMixers: map[int]int{}}
			for _, id := range a.MixOps() {
				c.BaseMixers[a.Volume(id)] = 1
			}
		} else {
			c, err = mfsynth.CaseByName(*caseName)
			if err != nil {
				return err
			}
		}
		if *grid > 0 {
			c.GridSize = *grid
		}

		// Fault injection: an explicit spec file wins over seeded generation.
		var faults *mfsynth.FaultSet
		switch {
		case *faultFile != "":
			f, err := os.Open(*faultFile)
			if err != nil {
				return err
			}
			faults, err = mfsynth.ParseFaults(f)
			f.Close()
			if err != nil {
				return err
			}
		case *faultRate > 0:
			faults = mfsynth.GenerateFaults(*faultSeed, mfsynth.FaultGenOptions{
				Grid: c.GridSize, Rate: *faultRate, KeepPorts: true,
			})
		}

		row, err := mfsynth.EvaluateRowCtx(ctx, c, *policy, mfsynth.Table1RowOptions{
			Mode: placeMode, Grid: c.GridSize, Workers: *workers, Faults: faults,
			Backends: portfolio, Anneal: annealOpts,
		})
		if err != nil {
			return err
		}

		// Re-run the synthesis to get the full result for rendering.
		des, err := mfsynth.Traditional(c, *policy, mfsynth.DefaultCost)
		if err != nil {
			return err
		}
		res, err := mfsynth.SynthesizeCtx(ctx, c.Assay, mfsynth.Options{
			Policy:   mfsynth.Resources{Mixers: des.Mixers, Detectors: c.Detectors},
			Place:    mfsynth.PlaceConfig{Grid: c.GridSize, Mode: placeMode},
			Workers:  *workers,
			Trace:    tr,
			Faults:   faults,
			Backends: portfolio,
			Anneal:   annealOpts,
		})
		if err != nil {
			return err
		}

		fmt.Printf("%s (policy p%d, %s mapping, %dx%d valve matrix)\n",
			c.Assay.Name, *policy, *mode, c.GridSize, c.GridSize)
		fmt.Printf("  operations:        %s\n", c.Assay.Stats())
		fmt.Printf("  setting 1:         vs_max %d (pump %d)\n", res.VsMax1, res.VsPump1)
		fmt.Printf("  setting 2:         vs_max %d (pump %d)\n", res.VsMax2, res.VsPump2)
		fmt.Printf("  valves used:       %d of %d virtual\n", res.UsedValves, c.GridSize*c.GridSize)
		if !faults.Empty() {
			fmt.Printf("  faults injected:   %d defective valve(s)\n", faults.Len())
		}
		if res.Degraded() {
			fmt.Printf("  degradation:       %s\n", res.Degradation)
		} else if !faults.Empty() {
			fmt.Printf("  degradation:       none (nominal result despite faults)\n")
		}
		if res.Backend != "" {
			fmt.Printf("  backend:           %s\n", res.Backend)
		}
		if res.Race != nil {
			for _, l := range res.Race.Lanes {
				mark := " "
				if l.Won {
					mark = "*"
				}
				if l.Ok {
					fmt.Printf("   %s %-7s vs_max1 %-4d %.2fs\n", mark, l.Backend, l.VsMax1, l.Seconds)
				} else {
					fmt.Printf("   %s %-7s failed: %s\n", mark, l.Backend, l.Err)
				}
			}
		}
		if *compare {
			fmt.Printf("  traditional:       vs_tmax %d with %d valves (#d %d, #m %s)\n",
				des.VsTmax, des.Valves, des.NumDevices, des.MixVector())
			fmt.Printf("  improvement:       %.2f%% (setting 1), %.2f%% (setting 2), %.2f%% valves\n",
				row.Imp1, row.Imp2, row.ImpV)
		}
		fmt.Printf("  runtime:           %s\n", res.Runtime.Round(res.Runtime/100+1))
		if *doVerify {
			rep := mfsynth.Verify(res)
			fmt.Printf("  conformance:       %d checks, %d violation(s)\n", rep.Checks, len(rep.Violations))
			if !rep.Clean() {
				return fmt.Errorf("conformance audit failed:\n%s", rep)
			}
		}

		if *gantt {
			fmt.Println("\nScheduling result:")
			fmt.Println(res.Schedule.Gantt())
		}
		if *snapshots {
			fmt.Println("\nChip snapshots:")
			for _, t := range res.SnapshotTimes() {
				fmt.Println(res.Snapshot(t))
			}
		}
		if *svgOut != "" {
			f, err := os.Create(*svgOut)
			if err != nil {
				return err
			}
			if err := mfsynth.WriteSVG(f, res, mfsynth.SVGOptions{At: -1}); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *svgOut)
		}
		if *dotOut != "" {
			f, err := os.Create(*dotOut)
			if err != nil {
				return err
			}
			if err := mfsynth.WriteDOT(f, c.Assay); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *dotOut)
		}
		return nil
	}
	runErr := run()
	// Flush every sink before exiting: all sinks are attempted even when
	// one fails, and the first error is fatal rather than silently dropped.
	var sinks mfsynth.SinkSet
	sinks.Add(*traceOut, tr.WriteChromeTrace)
	sinks.Add(*eventsOut, tr.WriteJSONL)
	written, sinkErr := sinks.Flush()
	for _, p := range written {
		fmt.Printf("wrote %s\n", p)
	}
	if *stats {
		if err := tr.WriteText(os.Stderr); err != nil && sinkErr == nil {
			sinkErr = err
		}
	}
	if stopProgress != nil {
		if err := stopProgress(); err != nil && sinkErr == nil {
			sinkErr = err
		} else if err == nil {
			fmt.Printf("wrote %s\n", *progLog)
		}
	}
	if prof != nil {
		if err := prof.Close(); err != nil && sinkErr == nil {
			sinkErr = err
		} else if err == nil {
			fmt.Printf("wrote profiles to %s\n", *profDir)
		}
	}
	switch {
	case runErr != nil && ctx.Err() != nil:
		log.Fatalf("interrupted by signal; observability sinks were flushed with the partial run (%v)", runErr)
	case runErr != nil:
		log.Fatal(runErr)
	case sinkErr != nil:
		log.Fatal(sinkErr)
	}
}

func parseMode(s string) (mfsynth.PlaceMode, error) {
	switch s {
	case "rolling":
		return mfsynth.RollingHorizon, nil
	case "monolithic":
		return mfsynth.MonolithicILP, nil
	case "greedy":
		return mfsynth.GreedyPlace, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want rolling, monolithic or greedy)", s)
}
