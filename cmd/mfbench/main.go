// Command mfbench regenerates the paper's evaluation artefacts: the
// actuation comparison of Figs. 2-3, the PCR schedule of Fig. 9, the chip
// snapshots of Fig. 10, and Table 1.
//
// Usage:
//
//	mfbench                 # everything (Table 1 takes a few minutes)
//	mfbench -figures        # only the figures
//	mfbench -table1 -fast   # Table 1 with the greedy mapper (quick)
package main

import (
	"flag"
	"fmt"
	"log"

	"mfsynth"
	"mfsynth/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mfbench: ")

	var (
		figures    = flag.Bool("figures", false, "only regenerate the figures")
		table1     = flag.Bool("table1", false, "only regenerate Table 1")
		extensions = flag.Bool("extensions", false, "only run the extension experiments (speedup, wear, control)")
		fast       = flag.Bool("fast", false, "use the greedy mapper (quick, slightly weaker)")
	)
	flag.Parse()
	all := !*figures && !*table1 && !*extensions

	if *figures || all {
		printFigures()
	}
	if *table1 || all {
		printTable1(*fast)
	}
	if *extensions || all {
		printExtensions()
	}
}

// printExtensions runs the experiments beyond the paper's evaluation: the
// execution-speedup future-work direction, the wear/lifetime model and the
// control-pin analysis.
func printExtensions() {
	fmt.Println("== Extension: execution speedup with dynamic devices (paper §5 future work) ==")
	var rows []*mfsynth.Speedup
	for _, name := range mfsynth.CaseNames() {
		c, err := mfsynth.CaseByName(name)
		if err != nil {
			log.Fatal(err)
		}
		for p := 1; p <= 3; p++ {
			s, err := mfsynth.ExecutionSpeedup(c, p)
			if err != nil {
				log.Printf("%s p%d: %v", name, p, err)
				continue
			}
			rows = append(rows, s)
		}
	}
	fmt.Println(mfsynth.RenderSpeedups(rows))

	fmt.Println("== Extension: chip service life (rated valve life 4000 actuations) ==")
	model := mfsynth.WearModel{RatedActuations: 4000}
	fmt.Printf("%-22s %-4s %12s %12s %8s %14s %14s\n",
		"case", "po.", "runs trad.", "runs ours", "gain", "balance trad.", "balance ours")
	for _, name := range mfsynth.CaseNames() {
		c, _ := mfsynth.CaseByName(name)
		des, err := mfsynth.Traditional(c, 1, mfsynth.DefaultCost)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mfsynth.Synthesize(c.Assay, mfsynth.Options{
			Policy: mfsynth.Resources{Mixers: des.Mixers, Detectors: c.Detectors},
			Place:  mfsynth.PlaceConfig{Grid: c.GridSize, Mode: mfsynth.GreedyPlace},
		})
		if err != nil {
			log.Fatal(err)
		}
		trad := mfsynth.TraditionalActuationCounts(des)
		ours := mfsynth.ChipActuationCounts(res)
		rt, ro := model.RunsToFirstWearout(trad), model.RunsToFirstWearout(ours)
		fmt.Printf("%-22s p1   %12d %12d %7.2fx %14.3f %14.3f\n",
			name, rt, ro, float64(ro)/float64(rt),
			mfsynth.WearBalance(trad), mfsynth.WearBalance(ours))
	}
	fmt.Println()

	fmt.Println("== Extension: control-layer effort and contamination risk ==")
	for _, name := range mfsynth.CaseNames() {
		c, _ := mfsynth.CaseByName(name)
		res, err := mfsynth.Synthesize(c.Assay, mfsynth.Options{
			Policy: mfsynth.Resources{Mixers: c.BaseMixers, Detectors: c.Detectors},
			Place:  mfsynth.PlaceConfig{Grid: c.GridSize, Mode: mfsynth.GreedyPlace},
		})
		if err != nil {
			log.Fatal(err)
		}
		ca := mfsynth.AnalyzeControl(res)
		lay := mfsynth.RouteControlLayer(res, ca)
		fmt.Printf("%-22s %s\n", name, ca)
		fmt.Printf("%-22s control layer: %d/%d trees routed, %d extra pins, channel length %d\n",
			"", lay.Routed, lay.Routed+lay.Failed, lay.ExtraPins, lay.TotalLength)
		fmt.Printf("%-22s %s\n", "", mfsynth.AnalyzeContamination(res))
		plan := mfsynth.PlanWashes(res)
		fmt.Printf("%-22s wash plan: %d flushes clear %d/%d risks, vs1max %d -> %d\n",
			"", len(plan.Washes), plan.Cleared, plan.Cleared+plan.Uncleared,
			plan.VsMax1Before, plan.VsMax1After)
	}
	fmt.Println()

	fmt.Println("== Extension: in-vitro diagnostics scaling (samples × reagents) ==")
	fmt.Printf("%8s %8s %8s %10s %10s %8s\n", "size", "#op", "vs1max", "vs2max", "#valves", "makespan")
	for s := 2; s <= 4; s++ {
		r := s
		a := mfsynth.InVitro(s, r, 8)
		grid := 12 + 2*(s-2)
		res, err := mfsynth.Synthesize(a, mfsynth.Options{
			Policy: mfsynth.Resources{Mixers: map[int]int{8: s}, Detectors: s},
			Place:  mfsynth.PlaceConfig{Grid: grid, Mode: mfsynth.GreedyPlace},
		})
		if err != nil {
			log.Printf("InVitro %dx%d: %v", s, r, err)
			continue
		}
		fmt.Printf("%5dx%-2d %8s %5d(%2d) %6d(%2d) %8d %8d\n",
			s, r, a.Stats(), res.VsMax1, res.VsPump1, res.VsMax2, res.VsPump2,
			res.UsedValves, res.Schedule.Makespan)
	}
	fmt.Println()
}

func printFigures() {
	fmt.Println("== Fig. 2 vs Fig. 3: dedicated mixer vs valve-role-changing mixer ==")
	fmt.Println(report.Fig2vs3())

	c := mfsynth.PCR()
	des, err := mfsynth.Traditional(c, 1, mfsynth.DefaultCost)
	if err != nil {
		log.Fatal(err)
	}
	res, err := mfsynth.Synthesize(c.Assay, mfsynth.Options{
		Policy: mfsynth.Resources{Mixers: des.Mixers},
		Place:  mfsynth.PlaceConfig{Grid: c.GridSize},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Fig. 9: scheduling result of case PCR in p1 ==")
	fmt.Println(res.Schedule.Gantt())

	fmt.Println("== Fig. 10: snapshots of the synthesis result of case PCR in p1 ==")
	for _, t := range res.SnapshotTimes() {
		fmt.Println(res.Snapshot(t))
	}
	fmt.Printf("result: %s\n\n", res)
}

func printTable1(fast bool) {
	opts := mfsynth.Table1RowOptions{}
	if fast {
		opts.Mode = mfsynth.GreedyPlace
	}
	fmt.Println("== Table 1: comparison with optimal binding for traditional designs ==")
	rows, err := mfsynth.Table1(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(mfsynth.RenderTable1(rows))
}
