// Command mfbench regenerates the paper's evaluation artefacts: the
// actuation comparison of Figs. 2-3, the PCR schedule of Fig. 9, the chip
// snapshots of Fig. 10, and Table 1.
//
// Usage:
//
//	mfbench                        # everything (Table 1 takes a few minutes)
//	mfbench -figures               # only the figures
//	mfbench -table1 -fast          # Table 1 with the greedy mapper (quick)
//	mfbench -table1 -workers 4     # four-way parallel Table 1, same numbers
//	mfbench -table1 -json BENCH_table1.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mfsynth"
	"mfsynth/internal/par"
	"mfsynth/internal/report"
)

// cellsFailed records evaluation cells that errored; main exits non-zero
// when any did, so CI catches partial artefacts.
var cellsFailed int

func main() {
	log.SetFlags(0)
	log.SetPrefix("mfbench: ")

	var (
		figures    = flag.Bool("figures", false, "only regenerate the figures")
		table1     = flag.Bool("table1", false, "only regenerate Table 1")
		extensions = flag.Bool("extensions", false, "only run the extension experiments (speedup, wear, control)")
		fast       = flag.Bool("fast", false, "use the greedy mapper (quick, slightly weaker)")
		workers    = flag.Int("workers", 0, "worker count (0 = all CPUs, 1 = serial; results are identical)")
		jsonOut    = flag.String("json", "", "write Table 1 as machine-readable JSON to this file (e.g. BENCH_table1.json)")
		traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON of every synthesis run to this file (load in chrome://tracing or Perfetto)")
		eventsOut  = flag.String("events", "", "write the span/metric event stream as JSON lines to this file")
		stats      = flag.Bool("stats", false, "print the span tree and metrics summary to stderr")
		httpAddr   = flag.String("http", "", "serve live debug endpoints on this address while running: /metrics, /progress (SSE), /debug/pprof, /debug/vars (e.g. :8080)")
		profDir    = flag.String("profile-dir", "", "capture continuous profiles into this directory: whole-run cpu.pprof plus per-phase heap snapshots")
		progLog    = flag.String("progress-log", "", "write live progress snapshots as JSON lines to this file (validate with tracecheck -progress)")
		doVerify   = flag.Bool("verify", false, "audit every Table 1 synthesis result against the conformance catalogue")
		faultFile  = flag.String("faults", "", "fault-spec file injected into every Table 1 synthesis run")
		faultSeed  = flag.Int64("fault-seed", 0, "generate a random fault set with this seed (with -fault-rate)")
		faultRate  = flag.Float64("fault-rate", 0, "per-valve defect probability for -fault-seed / -campaign (e.g. 0.05)")
		campaign   = flag.Int("campaign", 0, "run a fault-injection campaign with this many seeded runs per benchmark")
		minSuccess = flag.Float64("min-success", 0, "fail (non-zero exit) when a campaign's success rate drops below this fraction")

		ablation         = flag.Bool("ablation", false, "run the backend-ablation sweep: every instance once per backend (ilp, greedy, anneal) under one deadline")
		ablationOut      = flag.String("ablation-out", "", "write the ablation sweep as machine-readable JSON to this file (e.g. BENCH_ablation.json; gate with tools/benchgate -ablation)")
		ablationDeadline = flag.Duration("ablation-deadline", 20*time.Second, "per-backend-run wall-clock cap for -ablation")
		ablationSizes    = flag.String("ablation-sizes", "", "comma-separated mix-op counts of the generated ablation assays (default 6,9,12)")
		ablationCases    = flag.String("ablation-cases", "", "comma-separated benchmark cases to add to the ablation sweep (slow; off by default)")
		annealSeed       = flag.Int64("anneal-seed", 0, "simulated-annealing base seed for -ablation (0 = default 1)")

		fleetRun     = flag.Bool("fleet", false, "run the fleet wear campaign: static mapping vs the closed-loop collector→analyzer→optimizer→actuator control over whole chip lifetimes")
		fleetOut     = flag.String("fleet-out", "", "write the fleet campaign as machine-readable JSON to this file (e.g. BENCH_fleet.json; gate with tools/benchgate -fleet)")
		fleetChips   = flag.Int("fleet-chips", 3, "fleet size for -fleet")
		fleetRounds  = flag.Int("fleet-rounds", 96, "campaign length for -fleet: each round dispatches one assay per live chip")
		fleetSeed    = flag.Int64("fleet-seed", 7, "campaign seed for -fleet (valve lives and request stream)")
		fleetRated   = flag.Int("fleet-rated", 2500, "nominal per-valve life in actuations for -fleet")
		fleetSpread  = flag.Float64("fleet-spread", 0.05, "fractional per-valve life spread around -fleet-rated")
		fleetCase    = flag.String("fleet-case", "PCR", "benchmark assay of the -fleet request stream")
		fleetHorizon = flag.Int("fleet-horizon", 2, "analyzer look-ahead in runs: re-synthesize when a chip's remaining life drops below this")
		fleetBias    = flag.Float64("fleet-bias", 1, "wear-bias weight the optimizer passes to synthesis (Options.WearBias)")
	)
	flag.Parse()
	all := !*figures && !*table1 && !*extensions && *campaign == 0 && !*ablation && !*fleetRun

	// SIGINT/SIGTERM cancels the evaluation through the synthesis
	// contexts: in-flight cells return early, remaining sections are
	// skipped, and the sink flushing below still runs so partial traces
	// are not lost.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The trace also feeds the -json metrics snapshot and every live
	// endpoint, so any of those flags enables it.
	var tr *mfsynth.Trace
	if *traceOut != "" || *eventsOut != "" || *stats || *jsonOut != "" ||
		*httpAddr != "" || *profDir != "" || *progLog != "" {
		tr = mfsynth.NewTrace()
	}

	if *httpAddr != "" {
		srv, err := mfsynth.Serve(*httpAddr, tr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("debug server on http://%s (/metrics /progress /debug/pprof)\n", srv.Addr())
	}
	var stopProgress func() error
	if *progLog != "" {
		f, err := os.Create(*progLog)
		if err != nil {
			log.Fatal(err)
		}
		stop := mfsynth.LogProgress(tr, f)
		stopProgress = func() error {
			err := stop()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			return err
		}
	}
	var prof *mfsynth.Profiler
	if *profDir != "" {
		var err error
		prof, err = mfsynth.StartProfiler(*profDir, tr)
		if err != nil {
			log.Fatal(err)
		}
	}

	faults, err := loadFaults(*faultFile, *faultSeed, *faultRate)
	if err != nil {
		log.Fatal(err)
	}

	if *figures || all {
		printFigures(ctx, tr)
	}
	if (*table1 || all) && ctx.Err() == nil {
		printTable1(ctx, *fast, *workers, *jsonOut, *doVerify, faults, *faultSeed, *faultRate, tr)
	}
	if (*extensions || all) && ctx.Err() == nil {
		printExtensions(ctx, *workers, tr)
	}
	if *campaign > 0 && ctx.Err() == nil {
		runCampaigns(ctx, *campaign, *faultSeed, *faultRate, *fast, *workers, *doVerify, *minSuccess)
	}
	if *ablation && ctx.Err() == nil {
		printAblation(ctx, *ablationOut, *ablationDeadline, *ablationSizes, *ablationCases, *annealSeed, *workers, *doVerify, tr)
	}
	if *fleetRun && ctx.Err() == nil {
		printFleet(ctx, *fleetOut, *fleetChips, *fleetRounds, *fleetSeed, *fleetRated, *fleetSpread, *fleetCase, *fleetHorizon, *fleetBias, tr)
	}

	// Flush every sink before deciding the exit status: all sinks are
	// attempted even when one fails, and the first error is fatal rather
	// than silently dropped.
	var sinks mfsynth.SinkSet
	sinks.Add(*traceOut, tr.WriteChromeTrace)
	sinks.Add(*eventsOut, tr.WriteJSONL)
	written, sinkErr := sinks.Flush()
	for _, p := range written {
		fmt.Printf("wrote %s\n", p)
	}
	if *stats {
		if err := tr.WriteText(os.Stderr); err != nil && sinkErr == nil {
			sinkErr = err
		}
	}
	if stopProgress != nil {
		if err := stopProgress(); err != nil && sinkErr == nil {
			sinkErr = err
		} else if err == nil {
			fmt.Printf("wrote %s\n", *progLog)
		}
	}
	if prof != nil {
		if err := prof.Close(); err != nil && sinkErr == nil {
			sinkErr = err
		} else if err == nil {
			fmt.Printf("wrote profiles to %s\n", *profDir)
		}
	}
	if sinkErr != nil {
		log.Fatal(sinkErr)
	}
	if ctx.Err() != nil {
		log.Fatalf("interrupted by signal; partial artefacts were flushed, %d cell(s) unfinished or failed", cellsFailed)
	}
	if cellsFailed > 0 {
		log.Fatalf("%d evaluation cell(s) failed", cellsFailed)
	}
}

// loadFaults resolves the Table 1 fault injection: an explicit spec file
// wins; seeded generation is deferred to the per-cell grid (see
// Table1RowOptions.FaultRate) and the campaign harness.
func loadFaults(file string, seed int64, rate float64) (*mfsynth.FaultSet, error) {
	_ = seed
	_ = rate
	if file == "" {
		return nil, nil
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return mfsynth.ParseFaults(f)
}

// runCampaigns fault-injects every benchmark `runs` times under policy p1
// and reports how gracefully the synthesis degrades. With minSuccess > 0 a
// benchmark whose success rate falls below the bar counts as a failed cell.
func runCampaigns(ctx context.Context, runs int, seed int64, rate float64, fast bool, workers int, doVerify bool, minSuccess float64) {
	if rate <= 0 {
		rate = 0.05
	}
	mode := mfsynth.RollingHorizon
	if fast {
		mode = mfsynth.GreedyPlace
	}
	fmt.Printf("== Fault-injection campaign: %d runs/case, rate %.3f, seed %d ==\n", runs, rate, seed)
	for _, name := range mfsynth.CaseNames() {
		if ctx.Err() != nil {
			log.Printf("%s: campaign skipped (interrupted)", name)
			cellsFailed++
			continue
		}
		c, err := mfsynth.CaseByName(name)
		if err != nil {
			log.Print(err)
			cellsFailed++
			continue
		}
		camp, err := mfsynth.RunCampaign(c, 1, mfsynth.CampaignOptions{
			Runs:    runs,
			Seed:    seed,
			Rate:    rate,
			Mode:    mode,
			Workers: workers,
			Verify:  doVerify,
		})
		if err != nil {
			log.Printf("%s: %v", name, err)
			cellsFailed++
			continue
		}
		fmt.Println(mfsynth.RenderCampaign(camp))
		if camp.ViolationRuns() > 0 {
			cellsFailed++
		}
		if minSuccess > 0 && camp.SuccessRate() < minSuccess {
			log.Printf("%s: success rate %.1f%% below the %.1f%% bar",
				name, 100*camp.SuccessRate(), 100*minSuccess)
			cellsFailed++
		}
	}
	fmt.Println()
}

// fanout splits the worker budget between a section's independent cells and
// each cell's mapper: with more than one worker the cells run concurrently
// and every mapper is serial, otherwise the single cell stream passes the
// knob through. Results are identical either way.
func fanout(workers int) (outer, inner int) {
	outer = par.Workers(workers)
	if outer > 1 {
		return outer, 1
	}
	return outer, workers
}

// printExtensions runs the experiments beyond the paper's evaluation: the
// execution-speedup future-work direction, the wear/lifetime model and the
// control-pin analysis. The independent case × policy cells of each section
// are evaluated concurrently and printed in the fixed serial order.
func printExtensions(ctx context.Context, workers int, tr *mfsynth.Trace) {
	outer, inner := fanout(workers)
	names := mfsynth.CaseNames()

	fmt.Println("== Extension: execution speedup with dynamic devices (paper §5 future work) ==")
	type speedCell struct {
		name   string
		policy int
	}
	var cells []speedCell
	for _, name := range names {
		for p := 1; p <= 3; p++ {
			cells = append(cells, speedCell{name, p})
		}
	}
	type speedRes struct {
		s   *mfsynth.Speedup
		err error
	}
	speedups, perr := par.MapCtx(ctx, outer, len(cells), func(_, i int) (speedRes, error) {
		c, err := mfsynth.CaseByName(cells[i].name)
		if err != nil {
			return speedRes{err: err}, nil
		}
		s, err := mfsynth.ExecutionSpeedup(c, cells[i].policy)
		return speedRes{s: s, err: err}, nil
	})
	if perr != nil {
		// Per-cell errors ride in speedRes; an error here is a recovered
		// worker panic or a cancellation and must not be dropped.
		log.Printf("speedup extension: %v", perr)
		cellsFailed++
		return
	}
	var rows []*mfsynth.Speedup
	for i, r := range speedups {
		if r.err != nil {
			log.Printf("%s p%d: %v", cells[i].name, cells[i].policy, r.err)
			cellsFailed++
			continue
		}
		rows = append(rows, r.s)
	}
	fmt.Println(mfsynth.RenderSpeedups(rows))

	fmt.Println("== Extension: chip service life (rated valve life 4000 actuations) ==")
	model := mfsynth.WearModel{RatedActuations: 4000}
	fmt.Printf("%-22s %-4s %12s %12s %8s %14s %14s\n",
		"case", "po.", "runs trad.", "runs ours", "gain", "balance trad.", "balance ours")
	type wearRes struct {
		trad, ours []int
	}
	wearRows, err := par.MapCtx(ctx, outer, len(names), func(_, i int) (wearRes, error) {
		c, _ := mfsynth.CaseByName(names[i])
		des, err := mfsynth.Traditional(c, 1, mfsynth.DefaultCost)
		if err != nil {
			return wearRes{}, err
		}
		res, err := mfsynth.SynthesizeCtx(ctx, c.Assay, mfsynth.Options{
			Policy:  mfsynth.Resources{Mixers: des.Mixers, Detectors: c.Detectors},
			Place:   mfsynth.PlaceConfig{Grid: c.GridSize, Mode: mfsynth.GreedyPlace},
			Workers: inner,
			Trace:   tr,
		})
		if err != nil {
			return wearRes{}, err
		}
		return wearRes{
			trad: mfsynth.TraditionalActuationCounts(des),
			ours: mfsynth.ChipActuationCounts(res),
		}, nil
	})
	if err != nil {
		log.Printf("wear extension: %v", err)
		cellsFailed++
		return
	}
	for i, wr := range wearRows {
		rt, ro := model.RunsToFirstWearout(wr.trad), model.RunsToFirstWearout(wr.ours)
		fmt.Printf("%-22s p1   %12d %12d %7.2fx %14.3f %14.3f\n",
			names[i], rt, ro, float64(ro)/float64(rt),
			mfsynth.WearBalance(wr.trad), mfsynth.WearBalance(wr.ours))
	}
	fmt.Println()

	fmt.Println("== Extension: control-layer effort and contamination risk ==")
	type ctrlRes struct {
		ca     mfsynth.ControlAnalysis
		lay    mfsynth.ControlLayout
		contam mfsynth.ContaminationReport
		plan   mfsynth.WashPlan
	}
	ctrlRows, err := par.MapCtx(ctx, outer, len(names), func(_, i int) (ctrlRes, error) {
		c, _ := mfsynth.CaseByName(names[i])
		res, err := mfsynth.SynthesizeCtx(ctx, c.Assay, mfsynth.Options{
			Policy:  mfsynth.Resources{Mixers: c.BaseMixers, Detectors: c.Detectors},
			Place:   mfsynth.PlaceConfig{Grid: c.GridSize, Mode: mfsynth.GreedyPlace},
			Workers: inner,
			Trace:   tr,
		})
		if err != nil {
			return ctrlRes{}, err
		}
		ca := mfsynth.AnalyzeControl(res)
		return ctrlRes{
			ca:     ca,
			lay:    mfsynth.RouteControlLayer(res, ca),
			contam: mfsynth.AnalyzeContamination(res),
			plan:   mfsynth.PlanWashes(res),
		}, nil
	})
	if err != nil {
		log.Printf("control extension: %v", err)
		cellsFailed++
		return
	}
	for i, cr := range ctrlRows {
		fmt.Printf("%-22s %s\n", names[i], cr.ca)
		fmt.Printf("%-22s control layer: %d/%d trees routed, %d extra pins, channel length %d\n",
			"", cr.lay.Routed, cr.lay.Routed+cr.lay.Failed, cr.lay.ExtraPins, cr.lay.TotalLength)
		fmt.Printf("%-22s %s\n", "", cr.contam)
		fmt.Printf("%-22s wash plan: %d flushes clear %d/%d risks, vs1max %d -> %d\n",
			"", len(cr.plan.Washes), cr.plan.Cleared, cr.plan.Cleared+cr.plan.Uncleared,
			cr.plan.VsMax1Before, cr.plan.VsMax1After)
	}
	fmt.Println()

	fmt.Println("== Extension: in-vitro diagnostics scaling (samples × reagents) ==")
	fmt.Printf("%8s %8s %8s %10s %10s %8s\n", "size", "#op", "vs1max", "vs2max", "#valves", "makespan")
	sizes := []int{2, 3, 4}
	type vitroRes struct {
		a   *mfsynth.Assay
		res *mfsynth.Result
		err error
	}
	vitro, verr := par.MapCtx(ctx, outer, len(sizes), func(_, i int) (vitroRes, error) {
		s := sizes[i]
		a := mfsynth.InVitro(s, s, 8)
		grid := 12 + 2*(s-2)
		res, err := mfsynth.SynthesizeCtx(ctx, a, mfsynth.Options{
			Policy:  mfsynth.Resources{Mixers: map[int]int{8: s}, Detectors: s},
			Place:   mfsynth.PlaceConfig{Grid: grid, Mode: mfsynth.GreedyPlace},
			Workers: inner,
			Trace:   tr,
		})
		return vitroRes{a: a, res: res, err: err}, nil
	})
	if verr != nil {
		log.Printf("in-vitro extension: %v", verr)
		cellsFailed++
		return
	}
	for i, vr := range vitro {
		s := sizes[i]
		if vr.err != nil {
			log.Printf("InVitro %dx%d: %v", s, s, vr.err)
			cellsFailed++
			continue
		}
		res := vr.res
		fmt.Printf("%5dx%-2d %8s %5d(%2d) %6d(%2d) %8d %8d\n",
			s, s, vr.a.Stats(), res.VsMax1, res.VsPump1, res.VsMax2, res.VsPump2,
			res.UsedValves, res.Schedule.Makespan)
	}
	fmt.Println()
}

func printFigures(ctx context.Context, tr *mfsynth.Trace) {
	fmt.Println("== Fig. 2 vs Fig. 3: dedicated mixer vs valve-role-changing mixer ==")
	fmt.Println(report.Fig2vs3())

	c := mfsynth.PCR()
	des, err := mfsynth.Traditional(c, 1, mfsynth.DefaultCost)
	if err != nil {
		log.Fatal(err)
	}
	res, err := mfsynth.SynthesizeCtx(ctx, c.Assay, mfsynth.Options{
		Policy: mfsynth.Resources{Mixers: des.Mixers},
		Place:  mfsynth.PlaceConfig{Grid: c.GridSize},
		Trace:  tr,
	})
	if err != nil {
		log.Printf("figures: %v", err)
		cellsFailed++
		return
	}

	fmt.Println("== Fig. 9: scheduling result of case PCR in p1 ==")
	fmt.Println(res.Schedule.Gantt())

	fmt.Println("== Fig. 10: snapshots of the synthesis result of case PCR in p1 ==")
	for _, t := range res.SnapshotTimes() {
		fmt.Println(res.Snapshot(t))
	}
	fmt.Printf("result: %s\n\n", res)
}

func printTable1(ctx context.Context, fast bool, workers int, jsonOut string, doVerify bool, faults *mfsynth.FaultSet, faultSeed int64, faultRate float64, tr *mfsynth.Trace) {
	opts := mfsynth.Table1RowOptions{
		Workers: workers, Trace: tr, Verify: doVerify,
		Faults: faults, FaultSeed: faultSeed, FaultRate: faultRate,
	}
	if fast {
		opts.Mode = mfsynth.GreedyPlace
	}
	if !faults.Empty() || faultRate > 0 {
		fmt.Println("(fault injection active: metrics may deviate from the paper's Table 1)")
	}
	fmt.Println("== Table 1: comparison with optimal binding for traditional designs ==")
	start := time.Now()
	rows, err := mfsynth.Table1Ctx(ctx, opts)
	wall := time.Since(start)
	if err != nil {
		log.Printf("table1: %v", err)
		cellsFailed++
		return
	}
	fmt.Println(mfsynth.RenderTable1(rows))
	fmt.Printf("wall-clock: %.1fs (workers %d, GOMAXPROCS %d)\n\n",
		wall.Seconds(), par.Workers(workers), runtime.GOMAXPROCS(0))
	if jsonOut != "" {
		if err := writeTable1JSON(jsonOut, rows, opts, workers, wall, tr); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", jsonOut)
	}
}

// printAblation runs the backend-ablation sweep (-ablation): every
// instance synthesised once per backend under the same deadline, so the
// anytime portfolio's rungs can be compared head to head. The JSON
// artefact (-ablation-out) feeds tools/benchgate -ablation.
func printAblation(ctx context.Context, out string, deadline time.Duration, sizesCSV, casesCSV string, seed int64, workers int, doVerify bool, tr *mfsynth.Trace) {
	sizes, err := parseSizes(sizesCSV)
	if err != nil {
		log.Printf("ablation: %v", err)
		cellsFailed++
		return
	}
	opts := mfsynth.AblationOptions{
		Sizes:    sizes,
		Seed:     1,
		Cases:    splitCSV(casesCSV),
		Deadline: deadline,
		Anneal:   mfsynth.AnnealOptions{Seed: seed},
		Workers:  workers,
		Verify:   doVerify,
		Trace:    tr,
	}
	fmt.Printf("== Backend ablation: ilp vs greedy vs anneal, %s deadline ==\n", deadline)
	start := time.Now()
	rows, err := mfsynth.Ablation(ctx, opts)
	wall := time.Since(start)
	if err != nil {
		log.Printf("ablation: %v", err)
		cellsFailed++
		return
	}
	fmt.Printf("%-18s %5s %5s", "instance", "#op", "grid")
	for _, b := range mfsynth.Backends() {
		fmt.Printf(" | %-24s", b)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-18s %5d %5d", r.Instance, r.Ops, r.Grid)
		for _, b := range mfsynth.Backends() {
			c := r.Cell(string(b))
			switch {
			case c == nil:
				fmt.Printf(" | %-24s", "-")
			case !c.Ok:
				fmt.Printf(" | %-24s", "failed ("+truncate(c.Err, 14)+")")
			default:
				mark := ""
				if !c.Complete {
					mark = "*"
				}
				fmt.Printf(" | vs1 %-4d #v %-4d %5.1fs%-1s", c.VsMax1, c.UsedValves, c.Seconds, mark)
			}
		}
		fmt.Println()
	}
	fmt.Printf("(* = incomplete mapping; wall-clock %.1fs)\n\n", wall.Seconds())
	if out != "" {
		if err := writeAblationJSON(out, rows, opts, wall); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", out)
	}
}

// printFleet runs the fleet wear campaign (-fleet): the same seeded
// request stream executed with a static mapping per chip and with the
// closed-loop wear controller, compared on assays completed before the
// first chip death. The JSON artefact (-fleet-out) feeds
// tools/benchgate -fleet.
func printFleet(ctx context.Context, out string, chips, rounds int, seed int64, rated int, spread float64, caseName string, horizon int, bias float64, tr *mfsynth.Trace) {
	c, err := mfsynth.CaseByName(caseName)
	if err != nil {
		log.Printf("fleet: %v", err)
		cellsFailed++
		return
	}
	cfg := mfsynth.FleetConfig{
		Chips:      chips,
		Grid:       c.GridSize,
		Seed:       seed,
		Rounds:     rounds,
		Rated:      rated,
		LifeSpread: spread,
		Horizon:    horizon,
		WearBias:   bias,
		Workloads: []mfsynth.FleetWorkload{{
			Name:  caseName,
			Assay: c.Assay,
			// The greedy mapper keeps campaign-scale re-synthesis cheap;
			// wear steering happens through the prior it is seeded with.
			Options: mfsynth.Options{Place: mfsynth.PlaceConfig{Mode: mfsynth.GreedyPlace}},
		}},
		Trace: tr,
	}
	fmt.Printf("== Fleet wear campaign: %d chips, %q stream, rated life %d, seed %d ==\n",
		chips, caseName, rated, seed)
	start := time.Now()
	res, _, err := mfsynth.RunFleet(ctx, cfg)
	wall := time.Since(start)
	if err != nil {
		log.Printf("fleet: %v", err)
		cellsFailed++
		return
	}
	fmt.Printf("%-12s %8s %8s %8s %10s %8s %8s\n",
		"mode", "assays†", "total", "death@", "mean-runs", "resynth", "promote")
	for _, row := range []struct {
		name string
		m    mfsynth.FleetModeResult
	}{{"static", res.Static}, {"closed-loop", res.Closed}} {
		fmt.Printf("%-12s %8d %8d %8d %10.1f %8d %8d\n",
			row.name, row.m.AssaysBeforeFirstDeath, row.m.TotalAssays,
			row.m.FirstDeathRound, row.m.MeanRunsToFirstWearout,
			row.m.Resyntheses, row.m.Promotions)
	}
	fmt.Printf("(† = fleet-wide assays completed before the first chip death)\n")
	fmt.Printf("closed-loop lifetime extension: %+.1f%% (fingerprint %s, wall-clock %.1fs)\n\n",
		res.LifetimeExtensionPct, res.Fingerprint[:12], wall.Seconds())
	if out != "" {
		if err := writeFleetJSON(out, res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", out)
	}
}

// writeFleetJSON writes the campaign artefact (-fleet-out); the fleet
// Result is already the machine-readable form, fingerprint included.
func writeFleetJSON(path string, res *mfsynth.FleetResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseSizes parses the -ablation-sizes CSV ("" keeps the defaults).
func parseSizes(csv string) ([]int, error) {
	var sizes []int
	for _, f := range splitCSV(csv) {
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -ablation-sizes entry %q", f)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

func splitCSV(s string) []string {
	var fields []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			fields = append(fields, f)
		}
	}
	return fields
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// ablationJSON is the machine-readable ablation artefact (-ablation-out);
// tools/benchgate -ablation consumes it.
type ablationJSON struct {
	DeadlineSeconds float64                `json:"deadline_seconds"`
	Seed            int64                  `json:"seed"`
	AnnealSeed      int64                  `json:"anneal_seed"`
	Backends        []string               `json:"backends"`
	WallSeconds     float64                `json:"wall_seconds"`
	Rows            []*mfsynth.AblationRow `json:"rows"`
}

func writeAblationJSON(path string, rows []*mfsynth.AblationRow, opts mfsynth.AblationOptions, wall time.Duration) error {
	out := ablationJSON{
		DeadlineSeconds: opts.Deadline.Seconds(),
		Seed:            opts.Seed,
		AnnealSeed:      opts.Anneal.WithDefaults().Seed,
		WallSeconds:     wall.Seconds(),
		Rows:            rows,
	}
	for _, b := range mfsynth.Backends() {
		out.Backends = append(out.Backends, string(b))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// table1JSON is the machine-readable Table 1 artefact (-json flag).
type table1JSON struct {
	Mode        string        `json:"mode"`
	Workers     int           `json:"workers"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	WallSeconds float64       `json:"wall_seconds"`
	Rows        []table1Row   `json:"rows"`
	Averages    table1AvgJSON `json:"averages"`
	// Metrics is the observability snapshot accumulated across the twelve
	// synthesis runs (solver nodes, Dijkstra pops, …).
	Metrics *mfsynth.MetricsSnapshot `json:"metrics,omitempty"`
}

type table1Row struct {
	Case           string  `json:"case"`
	Policy         int     `json:"policy"`
	Ops            string  `json:"ops"`
	NumDevices     int     `json:"num_devices"`
	MixVector      string  `json:"mix_vector"`
	VsTmax         int     `json:"vs_tmax"`
	TradValves     int     `json:"trad_valves"`
	Vs1Max         int     `json:"vs1_max"`
	Vs1Pump        int     `json:"vs1_pump"`
	Imp1Pct        float64 `json:"imp1_pct"`
	Vs2Max         int     `json:"vs2_max"`
	Vs2Pump        int     `json:"vs2_pump"`
	Imp2Pct        float64 `json:"imp2_pct"`
	OurValves      int     `json:"our_valves"`
	ImpVPct        float64 `json:"impv_pct"`
	RuntimeSeconds float64 `json:"runtime_seconds"`
	// PhaseSeconds splits the runtime over the synthesis pipeline phases
	// ("schedule", "place", "route").
	PhaseSeconds map[string]float64 `json:"phase_seconds,omitempty"`
}

type table1AvgJSON struct {
	Imp1Pct float64 `json:"imp1_pct"`
	Imp2Pct float64 `json:"imp2_pct"`
	ImpVPct float64 `json:"impv_pct"`
}

func writeTable1JSON(path string, rows []*mfsynth.Table1Row, opts mfsynth.Table1RowOptions, workers int, wall time.Duration, tr *mfsynth.Trace) error {
	out := table1JSON{
		Mode:        opts.Mode.String(),
		Workers:     par.Workers(workers),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		WallSeconds: wall.Seconds(),
		Metrics:     tr.Metrics().Snapshot(),
	}
	for _, r := range rows {
		out.Rows = append(out.Rows, table1Row{
			Case:           r.Case,
			Policy:         r.Policy,
			Ops:            r.Ops,
			NumDevices:     r.NumDevices,
			MixVector:      r.MixVector,
			VsTmax:         r.VsTmax,
			TradValves:     r.TradValves,
			Vs1Max:         r.Vs1Max,
			Vs1Pump:        r.Vs1Pump,
			Imp1Pct:        r.Imp1,
			Vs2Max:         r.Vs2Max,
			Vs2Pump:        r.Vs2Pump,
			Imp2Pct:        r.Imp2,
			OurValves:      r.OurValves,
			ImpVPct:        r.ImpV,
			RuntimeSeconds: r.Runtime.Seconds(),
			PhaseSeconds:   r.Phases,
		})
	}
	out.Averages.Imp1Pct, out.Averages.Imp2Pct, out.Averages.ImpVPct = mfsynth.Table1Averages(rows)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
