// Command mfserved is the synthesis-as-a-service daemon: a long-running
// HTTP server that queues synthesis jobs, runs them on a bounded worker
// fleet, caches results by canonical request fingerprint, and sheds load
// with structured 429/503 problems when over capacity.
//
// Usage:
//
//	mfserved -addr :8547 -workers 4 -cache 1024
//	curl -d '{"case":"PCR","policy":1}' http://localhost:8547/v1/jobs
//	curl http://localhost:8547/v1/jobs/j000001/events   # live SSE progress
//	curl http://localhost:8547/v1/stats
//	curl http://localhost:8547/metrics                  # Prometheus text format
//
// SIGINT/SIGTERM drains gracefully: intake stops (new submissions get
// 503), queued and running jobs finish within -drain-timeout (stragglers
// are cancelled through their contexts and answer with a structured
// cancellation), sinks are flushed, and the process exits 0.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"mfsynth/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mfserved: ")

	var (
		addr         = flag.String("addr", ":8547", "HTTP listen address (use 127.0.0.1:0 for an ephemeral port)")
		workers      = flag.Int("workers", 0, "synthesis worker fleet size (0 = all CPUs); in-flight jobs never exceed this")
		queueDepth   = flag.Int("queue", 64, "job queue depth; a full queue sheds with 429 + Retry-After")
		cacheSize    = flag.Int("cache", 512, "result cache entries, keyed by canonical request fingerprint (0 = no cache)")
		rate         = flag.Float64("rate", 0, "per-client submissions per second (0 = unlimited)")
		burst        = flag.Int("burst", 16, "per-client submission burst size (with -rate)")
		maxJobs      = flag.Int("max-jobs", 4096, "retained job records; the oldest finished jobs are forgotten first")
		deadline     = flag.Duration("deadline", 0, "default per-job synthesis deadline (0 = unbounded; requests may set their own)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown grace for queued and running jobs")
		jobLogPath   = flag.String("joblog", "", "append one JSON line per finished job to this file (flushed on drain)")
	)
	flag.Parse()

	cfg := serve.Config{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		CacheEntries:    *cacheSize,
		RatePerSec:      *rate,
		Burst:           *burst,
		MaxJobRecords:   *maxJobs,
		DefaultDeadline: *deadline,
	}
	var sink *jobLogSink
	if *jobLogPath != "" {
		var err error
		sink, err = openJobLog(*jobLogPath)
		if err != nil {
			log.Fatal(err)
		}
		cfg.OnJobDone = sink.Log
	}
	s := serve.New(cfg)

	// Install the signal handler before announcing readiness: anyone who
	// has seen the listening line may SIGTERM us and expect a drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	// The listening line is a stable contract: tooling (and the drain
	// test) parses it to learn the bound address.
	fmt.Printf("mfserved listening on %s\n", ln.Addr())

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		log.Fatal(err)
	}
	stop() // a second signal kills immediately instead of waiting out the drain

	log.Printf("signal received; draining (grace %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		log.Printf("drain grace expired; in-flight jobs cancelled (%v)", err)
	}
	// Jobs are all terminal now; let pollers and event streams read their
	// final state, then close the listener.
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http serve: %v", err)
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			log.Fatalf("flushing job log: %v", err)
		}
	}
	st := s.Stats()
	log.Printf("drained: %d completed, %d failed, %d cancelled; bye", st.Completed, st.Failed, st.Cancelled)
}

// jobLogSink appends one JSON line per finished job; Close flushes before
// the process exits so a drain never loses records.
type jobLogSink struct {
	mu sync.Mutex
	f  *os.File
	bw *bufio.Writer
}

func openJobLog(path string) (*jobLogSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &jobLogSink{f: f, bw: bufio.NewWriter(f)}, nil
}

func (s *jobLogSink) Log(v serve.JobView) {
	s.mu.Lock()
	defer s.mu.Unlock()
	enc := json.NewEncoder(s.bw)
	if err := enc.Encode(v); err != nil {
		log.Printf("job log: %v", err)
	}
}

func (s *jobLogSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bw.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
