package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mfsynth/internal/serve"
)

// TestGracefulDrain is the end-to-end shutdown contract: SIGTERM while a
// job is in flight lets the client read a complete response or a
// structured cancellation, flushes the job-log sink, and exits 0.
func TestGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "mfserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	jobLog := filepath.Join(dir, "jobs.jsonl")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-workers", "2",
		"-drain-timeout", "2s",
		"-joblog", jobLog)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatal("daemon exited before announcing its address")
	}
	line := sc.Text()
	addr := line[strings.LastIndex(line, " ")+1:]
	base := "http://" + addr
	go func() { // drain remaining stdout so the child never blocks on it
		for sc.Scan() {
		}
	}()

	// Submit a slow job: a monolithic ILP solve comfortably outlives the
	// SIGTERM we are about to send.
	body := `{"case":"PCR","policy":1,"options":{"mode":"monolithic"}}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		serve.JobView
		Via string `json:"via"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %+v", resp.StatusCode, sub)
	}

	// Open the event stream first, then pull the rug.
	eresp, err := http.Get(base + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// The stream must still deliver the terminal state: a complete result
	// or a structured cancellation, never a dropped connection.
	var final serve.JobView
	es := bufio.NewScanner(eresp.Body)
	sawDone := false
	for es.Scan() {
		if !sawDone {
			sawDone = es.Text() == "event: done"
			continue
		}
		if data, ok := strings.CutPrefix(es.Text(), "data: "); ok {
			if err := json.Unmarshal([]byte(data), &final); err != nil {
				t.Fatalf("bad done payload: %v\n%s", err, data)
			}
			break
		}
	}
	if !sawDone {
		t.Fatalf("event stream closed without a done event (read error: %v)", es.Err())
	}
	switch final.State {
	case serve.StateDone:
		if final.Result == nil || final.Result.Fingerprint == "" {
			t.Fatalf("done without a result: %+v", final)
		}
	case serve.StateCancelled, serve.StateFailed:
		if final.Error == nil {
			t.Fatalf("%s without a structured problem: %+v", final.State, final)
		}
	default:
		t.Fatalf("non-terminal state %q after drain", final.State)
	}

	// The process itself must exit 0 with the job log flushed.
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}

	data, err := os.ReadFile(jobLog)
	if err != nil {
		t.Fatalf("job log not flushed: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("job log is empty")
	}
	var logged serve.JobView
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &logged); err != nil {
		t.Fatalf("job log line is not valid JSON: %v\n%s", err, lines[len(lines)-1])
	}
	if logged.ID != sub.ID || logged.State != final.State {
		t.Fatalf("job log disagrees with the event stream: %+v vs %+v", logged, final)
	}
}
