package mfsynth

import (
	"strings"
	"testing"
)

// Shared synthesized PCR result for the extension-API tests.
func extResult(t *testing.T) *Result {
	t.Helper()
	c := PCR()
	res, err := Synthesize(c.Assay, Options{
		Policy: Resources{Mixers: c.BaseMixers},
		Place:  PlaceConfig{Grid: c.GridSize, Mode: GreedyPlace},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFacadeCheckResult(t *testing.T) {
	res := extResult(t)
	if v := CheckResult(res); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestFacadeWearAPI(t *testing.T) {
	res := extResult(t)
	c := PCR()
	des, err := Traditional(c, 1, DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	ours := ChipActuationCounts(res)
	trad := TraditionalActuationCounts(des)
	if len(ours) != res.UsedValves {
		t.Errorf("counts = %d, want %d", len(ours), res.UsedValves)
	}
	m := WearModel{RatedActuations: 4000}
	if m.RunsToFirstWearout(ours) <= m.RunsToFirstWearout(trad) {
		t.Error("dynamic chip should outlive the traditional design")
	}
	if WearBalance(ours) <= WearBalance(trad) {
		t.Error("dynamic chip should balance wear better")
	}
}

func TestFacadeControlAPI(t *testing.T) {
	res := extResult(t)
	a := AnalyzeControl(res)
	if a.Pins <= 0 || a.UsedValves != res.UsedValves {
		t.Fatalf("analysis = %+v", a)
	}
	lay := RouteControlLayer(res, a)
	if lay.Routed+lay.Failed != a.Pins {
		t.Errorf("routed %d + failed %d != %d pins", lay.Routed, lay.Failed, a.Pins)
	}
}

func TestFacadeContaminationAPI(t *testing.T) {
	res := extResult(t)
	rep := AnalyzeContamination(res)
	if !strings.Contains(rep.String(), "wash") {
		t.Errorf("report = %q", rep.String())
	}
}

func TestFacadeSpeedupAPI(t *testing.T) {
	s, err := ExecutionSpeedup(PCR(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Factor < 1 {
		t.Errorf("speedup = %.2f", s.Factor)
	}
	out := RenderSpeedups([]*Speedup{s})
	if !strings.Contains(out, "PCR") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFacadeSVGAndDOT(t *testing.T) {
	res := extResult(t)
	var svgOut strings.Builder
	if err := WriteSVG(&svgOut, res, SVGOptions{At: -1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svgOut.String(), "<svg") {
		t.Error("no svg output")
	}
	var dotOut strings.Builder
	if err := WriteDOT(&dotOut, res.Assay); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dotOut.String(), "digraph") {
		t.Error("no dot output")
	}
}

func TestFacadeRandomAndInVitro(t *testing.T) {
	a := RandomAssay(5, RandomAssayOptions{MixOps: 4})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	iv := InVitro(2, 2, 8)
	if err := iv.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(iv.MixOps()) != 4 {
		t.Errorf("InVitro mixes = %d", len(iv.MixOps()))
	}
}
