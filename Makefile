# Tier-1: the seed contract — everything builds, all tests pass.
tier1:
	go build ./...
	go test ./...

# Tier-2: static checks + the full suite under the race detector; the
# serial-vs-parallel equivalence tests make this the parallel engine's
# correctness gate.
tier2:
	go vet ./...
	go test -race ./...

# Serial-vs-parallel engine benchmarks (ns/op and allocs/op per worker count).
bench-parallel:
	go test -bench=Parallel -benchmem ./...
	go test -bench=SimplexMedium -benchmem ./internal/lp/

# Machine-readable Table 1 artefact.
bench-json:
	go run ./cmd/mfbench -table1 -json BENCH_table1.json

.PHONY: tier1 tier2 bench-parallel bench-json
