# Tier-1: the seed contract — everything builds, vets clean, all tests pass.
tier1:
	go build ./...
	go vet ./...
	go test ./...

# Tier-2: static checks + the full suite under the race detector; the
# serial-vs-parallel equivalence tests make this the parallel engine's
# correctness gate.
tier2:
	go vet ./...
	go test -race ./...

# Tier-3: observability gate — vet, the obs/export/par race suites (the
# export suite includes the live SSE integration and the concurrent-scrape
# race test), and two artefact smoke checks on a real mfsynth run: the
# Chrome trace must carry all four pipeline phases and per-worker tracks,
# and the live-progress JSONL log must satisfy the stream invariants
# (tracecheck validates both).
tier3:
	go vet ./...
	go test -race ./internal/obs/... ./internal/par/
	go run ./cmd/mfsynth -case PCR -workers 2 -trace .tier3-trace.json -progress-log .tier3-progress.jsonl >/dev/null
	go run ./tools/tracecheck -require-workers .tier3-trace.json
	go run ./tools/tracecheck -progress .tier3-progress.jsonl
	rm -f .tier3-trace.json .tier3-progress.jsonl

# The tier-1 contract under the race detector.
tier1-race:
	go build ./...
	go test -race ./...

# Tier-4: conformance gate — golden benchmark audits, the differential
# serial-vs-parallel oracle, the route brute-force oracle, a conformance-
# checked synthesis run, and a short smoke of every native fuzzer.
# Override FUZZTIME to fuzz longer (e.g. make tier4 FUZZTIME=5m).
FUZZTIME ?= 10s
tier4:
	go test -race ./internal/verify/ ./internal/route/ ./internal/assays/ ./internal/sim/
	go run ./cmd/mfsynth -case PCR -mode greedy -verify >/dev/null
	go test -run '^$$' -fuzz FuzzParseAssay -fuzztime $(FUZZTIME) ./internal/assays/
	go test -run '^$$' -fuzz FuzzRouteOracle -fuzztime $(FUZZTIME) ./internal/route/
	go test -run '^$$' -fuzz FuzzPipeline -fuzztime $(FUZZTIME) ./internal/verify/

# Tier-5: fault-injection gate — the fault/cancellation unit suites under
# the race detector, the zero-fault bit-identity and stuck-closed property
# tests, a verified single-run injection smoke, and a seeded campaign over
# all four benchmarks (each run conformance-audited, success rate gated).
# Override CAMPAIGN_RUNS / FAULT_RATE for a longer sweep.
CAMPAIGN_RUNS ?= 6
FAULT_RATE ?= 0.05
tier5:
	go test -race ./internal/fault/ ./internal/synerr/
	go test -race -run 'Cancel|MaxRipups' ./internal/core/
	go test -race -run 'TestStuckClosedNeverUsed|TestZeroFaultsBitIdentical|TestDegradedPartialConforms' ./internal/verify/
	go run ./cmd/mfsynth -case PCR -mode greedy -fault-seed 7 -fault-rate $(FAULT_RATE) -verify >/dev/null
	go run ./cmd/mfbench -campaign $(CAMPAIGN_RUNS) -fault-rate $(FAULT_RATE) -fast -verify -min-success 0.5

# Tier-6: service gate — the serve suites (queue, cache, coalescing,
# admission, drain, HTTP/SSE) plus the in-process load test under the race
# detector, and the daemon's build-and-SIGTERM drain test. LOAD_JOBS sets
# the concurrent-submission count of the load test (duplicate ratio 50%).
LOAD_JOBS ?= 200
tier6:
	MFSERVE_LOAD_JOBS=$(LOAD_JOBS) go test -race ./internal/serve/ ./cmd/mfserved/
	go build ./cmd/mfserved ./tools/loadgen

# Tier-7: portfolio gate — the annealing mapper's property suites
# (seed determinism across worker counts, accepted-state conformance,
# cost/report agreement fuzz) and the backend-race suites (deadline
# incumbent, dead-context failure, deterministic tiebreak, the
# no-incumbent rescue acceptance test) under the race detector, then a
# smoke ablation over the generated corpus whose artefact must pass the
# anneal-vs-ILP quality gate (anneal within 10% of the ILP's peak
# pressure wherever the ILP completes). Override ABLATION_DEADLINE for
# a longer per-cell budget.
ABLATION_DEADLINE ?= 30s
tier7:
	go test -race ./internal/anneal/
	go test -race -run 'TestRace|TestPortfolio|TestSingleBackend|TestPickWinner|TestParseBackends|TestBackendOptions' ./internal/core/
	go run ./cmd/mfbench -ablation -ablation-deadline $(ABLATION_DEADLINE) -ablation-out .tier7-ablation.json
	go run ./tools/benchgate -ablation .tier7-ablation.json
	rm -f .tier7-ablation.json

# Tier-8: fleet gate — the fleet wear-loop suites under the race detector
# (closed-loop-outlives-static, campaign determinism, the promoted-valve
# placement property, telemetry round-trip/errors), then a smoke campaign
# at the committed defaults whose artefact must pass internal validity
# (closed strictly outlives static, non-vacuous death, re-syntheses
# happened) and reproduce the committed BENCH_fleet.json fingerprint
# bit-identically.
tier8:
	go test -race ./internal/fleet/
	go run ./cmd/mfbench -fleet -fleet-out .tier8-fleet.json
	go run ./tools/benchgate -fleet .tier8-fleet.json -fleet-baseline BENCH_fleet.json
	rm -f .tier8-fleet.json

# Serial-vs-parallel engine benchmarks (ns/op and allocs/op per worker count).
bench-parallel:
	go test -bench=Parallel -benchmem ./...
	go test -bench=SimplexMedium -benchmem ./internal/lp/

# Machine-readable Table 1 artefact.
bench-json:
	go run ./cmd/mfbench -table1 -json BENCH_table1.json

# Hot-path micro-benchmarks (LP node solves, branch and bound, router),
# refreshing the committed BENCH_micro.txt snapshot.
bench:
	go test -run '^$$' -bench=. -benchmem -count=5 ./internal/lp/ ./internal/milp/ ./internal/route/ | tee BENCH_micro.txt

# Perf gate: re-run Table 1 with the debug server live and compare against
# the committed snapshots — synthesis results must match exactly (proving
# live observability never changes results), the gated work counters
# (simplex pivots, Dijkstra pops) and per-benchmark allocation counts may
# not regress by more than 10%, and the obs-on/obs-off overhead benchmark
# may not exceed 2%. While Table 1 runs, /metrics is scraped until the live
# B&B gap gauge appears, and the progress log is validated afterwards.
LIVE_ADDR ?= 127.0.0.1:18080
bench-gate:
	go build -o .bench-mfbench ./cmd/mfbench
	./.bench-mfbench -table1 -json .bench-fresh.json -http $(LIVE_ADDR) -progress-log .bench-progress.jsonl >/dev/null & \
	pid=$$!; live=0; \
	while kill -0 $$pid 2>/dev/null; do \
		if curl -sf http://$(LIVE_ADDR)/metrics | grep -q '^milp_gap '; then live=1; break; fi; \
		sleep 1; \
	done; \
	wait $$pid || exit 1; \
	[ $$live -eq 1 ] || { echo "bench-gate: /metrics never showed milp_gap mid-run"; exit 1; }
	go run ./tools/tracecheck -progress .bench-progress.jsonl
	go test -run '^$$' -bench=. -benchmem -count=1 ./internal/lp/ ./internal/milp/ ./internal/route/ > .bench-fresh-micro.txt
	go test -run '^$$' -bench ObsOverhead -benchtime 3x -count 3 ./internal/obs/export/ > .bench-overhead.txt
	go run ./tools/benchgate -old BENCH_table1.json -new .bench-fresh.json \
		-micro-old BENCH_micro.txt -micro-new .bench-fresh-micro.txt \
		-overhead .bench-overhead.txt
	rm -f .bench-mfbench .bench-fresh.json .bench-fresh-micro.txt .bench-overhead.txt .bench-progress.jsonl

.PHONY: tier1 tier1-race tier2 tier3 tier4 tier5 tier6 tier7 tier8 bench-parallel bench-json bench bench-gate
