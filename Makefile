# Tier-1: the seed contract — everything builds, all tests pass.
tier1:
	go build ./...
	go test ./...

# Tier-2: static checks + the full suite under the race detector; the
# serial-vs-parallel equivalence tests make this the parallel engine's
# correctness gate.
tier2:
	go vet ./...
	go test -race ./...

# Tier-3: observability gate — vet, the race suite, and a trace-artefact
# smoke check: a real mfsynth run must emit Chrome trace_event JSON with all
# four pipeline phases and per-worker tracks (tracecheck validates it).
tier3:
	go vet ./...
	go test -race ./internal/obs/ ./internal/par/
	go run ./cmd/mfsynth -case PCR -workers 2 -trace .tier3-trace.json >/dev/null
	go run ./tools/tracecheck -require-workers .tier3-trace.json
	rm -f .tier3-trace.json

# The tier-1 contract under the race detector.
tier1-race:
	go build ./...
	go test -race ./...

# Tier-4: conformance gate — golden benchmark audits, the differential
# serial-vs-parallel oracle, the route brute-force oracle, a conformance-
# checked synthesis run, and a short smoke of every native fuzzer.
# Override FUZZTIME to fuzz longer (e.g. make tier4 FUZZTIME=5m).
FUZZTIME ?= 10s
tier4:
	go test -race ./internal/verify/ ./internal/route/ ./internal/assays/ ./internal/sim/
	go run ./cmd/mfsynth -case PCR -mode greedy -verify >/dev/null
	go test -run '^$$' -fuzz FuzzParseAssay -fuzztime $(FUZZTIME) ./internal/assays/
	go test -run '^$$' -fuzz FuzzRouteOracle -fuzztime $(FUZZTIME) ./internal/route/
	go test -run '^$$' -fuzz FuzzPipeline -fuzztime $(FUZZTIME) ./internal/verify/

# Tier-5: fault-injection gate — the fault/cancellation unit suites under
# the race detector, the zero-fault bit-identity and stuck-closed property
# tests, a verified single-run injection smoke, and a seeded campaign over
# all four benchmarks (each run conformance-audited, success rate gated).
# Override CAMPAIGN_RUNS / FAULT_RATE for a longer sweep.
CAMPAIGN_RUNS ?= 6
FAULT_RATE ?= 0.05
tier5:
	go test -race ./internal/fault/ ./internal/synerr/
	go test -race -run 'Cancel|MaxRipups' ./internal/core/
	go test -race -run 'TestStuckClosedNeverUsed|TestZeroFaultsBitIdentical|TestDegradedPartialConforms' ./internal/verify/
	go run ./cmd/mfsynth -case PCR -mode greedy -fault-seed 7 -fault-rate $(FAULT_RATE) -verify >/dev/null
	go run ./cmd/mfbench -campaign $(CAMPAIGN_RUNS) -fault-rate $(FAULT_RATE) -fast -verify -min-success 0.5

# Serial-vs-parallel engine benchmarks (ns/op and allocs/op per worker count).
bench-parallel:
	go test -bench=Parallel -benchmem ./...
	go test -bench=SimplexMedium -benchmem ./internal/lp/

# Machine-readable Table 1 artefact.
bench-json:
	go run ./cmd/mfbench -table1 -json BENCH_table1.json

# Hot-path micro-benchmarks (LP node solves, branch and bound, router),
# refreshing the committed BENCH_micro.txt snapshot.
bench:
	go test -run '^$$' -bench=. -benchmem -count=5 ./internal/lp/ ./internal/milp/ ./internal/route/ | tee BENCH_micro.txt

# Perf gate: re-run Table 1 and the micro-benchmarks and compare against
# the committed snapshots — synthesis results must match exactly, and the
# gated work counters (simplex pivots, Dijkstra pops) and per-benchmark
# allocation counts may not regress by more than 10%.
bench-gate:
	go run ./cmd/mfbench -table1 -json .bench-fresh.json
	go test -run '^$$' -bench=. -benchmem -count=1 ./internal/lp/ ./internal/milp/ ./internal/route/ > .bench-fresh-micro.txt
	go run ./tools/benchgate -old BENCH_table1.json -new .bench-fresh.json \
		-micro-old BENCH_micro.txt -micro-new .bench-fresh-micro.txt
	rm -f .bench-fresh.json .bench-fresh-micro.txt

.PHONY: tier1 tier1-race tier2 tier3 tier4 tier5 bench-parallel bench-json bench bench-gate
