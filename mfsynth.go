// Package mfsynth is a reliability-aware synthesis toolkit for flow-based
// microfluidic biochips, reproducing Tseng, Li, Ho and Schlichtmann,
// "Reliability-aware Synthesis for Flow-based Microfluidic Biochips by
// Dynamic-device Mapping" (DAC 2015).
//
// The package is a façade over the implementation packages in internal/:
// sequencing graphs and benchmark assays, list scheduling, the
// valve-centered architecture, ILP-based dynamic-device mapping (with a
// built-in pure-Go MILP solver), transport routing with in situ storage
// pass-through, actuation simulation, and the traditional dedicated-device
// baseline of the paper's Table 1.
//
// Quick start:
//
//	c := mfsynth.PCR()
//	res, err := mfsynth.Synthesize(c.Assay, mfsynth.Options{
//		Policy: mfsynth.Resources{Mixers: c.BaseMixers},
//		Place:  mfsynth.PlaceConfig{Grid: c.GridSize},
//	})
//	fmt.Println(res)               // vs1=…(…) vs2=…(…) #v=…
//	fmt.Println(res.Snapshot(12))  // Fig. 10-style chip snapshot
package mfsynth

import (
	"context"
	"io"

	"mfsynth/internal/arch"
	"mfsynth/internal/assays"
	"mfsynth/internal/baseline"
	"mfsynth/internal/contam"
	"mfsynth/internal/control"
	"mfsynth/internal/core"
	"mfsynth/internal/fault"
	"mfsynth/internal/fleet"
	"mfsynth/internal/graph"
	"mfsynth/internal/obs"
	"mfsynth/internal/obs/export"
	"mfsynth/internal/place"
	"mfsynth/internal/report"
	"mfsynth/internal/schedule"
	"mfsynth/internal/sim"
	"mfsynth/internal/svg"
	"mfsynth/internal/synerr"
	"mfsynth/internal/verify"
	"mfsynth/internal/wear"
)

// Assay is a bioassay sequencing graph.
type Assay = graph.Assay

// Op is one assay operation.
type Op = graph.Op

// Kind classifies assay operations.
type Kind = graph.Kind

// Operation kinds.
const (
	Input  = graph.Input
	Mix    = graph.Mix
	Detect = graph.Detect
	Output = graph.Output
)

// NewAssay returns an empty assay with the given name.
func NewAssay(name string) *Assay { return graph.New(name) }

// ParseAssay reads an assay in the line-oriented text format (see
// internal/assays for the grammar).
func ParseAssay(r io.Reader) (*Assay, error) { return assays.Parse(r) }

// WriteAssay serialises an assay in the text format.
func WriteAssay(w io.Writer, a *Assay) error { return assays.Write(w, a) }

// Case bundles a benchmark assay with its evaluation parameters.
type Case = assays.Case

// PCR returns the polymerase chain reaction benchmark (Table 1).
func PCR() Case { return assays.PCR() }

// MixingTree returns the mixing-tree benchmark (Table 1).
func MixingTree() Case { return assays.MixingTree() }

// InterpolatingDilution returns the interpolating-dilution benchmark.
func InterpolatingDilution() Case { return assays.InterpolatingDilution() }

// ExponentialDilution returns the exponential-dilution benchmark.
func ExponentialDilution() Case { return assays.ExponentialDilution() }

// CaseByName resolves a benchmark by name; see CaseNames.
func CaseByName(name string) (Case, error) { return assays.ByName(name) }

// CaseNames lists the benchmark names in Table 1 order.
func CaseNames() []string { return assays.Names() }

// SerialDilution builds a single 1:1 serial dilution chain with the given
// step volumes — a simple parametric assay for experiments.
func SerialDilution(name string, stepVolumes []int) *Assay {
	return assays.SerialDilution(name, stepVolumes)
}

// InVitro builds the classic samples×reagents in-vitro diagnostics assay:
// every sample is mixed with every reagent and the product detected.
func InVitro(samples, reagents, volume int) *Assay {
	return assays.InVitro(samples, reagents, volume)
}

// WriteDOT renders an assay as a Graphviz digraph.
func WriteDOT(w io.Writer, a *Assay) error { return graph.WriteDOT(w, a) }

// Shape is a dynamic-device footprint on the valve matrix.
type Shape = arch.Shape

// Placement is a dynamic-device instance: a shape at a location.
type Placement = arch.Placement

// ShapesForVolume enumerates every device shape (and orientation) whose
// peristaltic ring holds exactly v units, e.g. 3×3, 2×4 and 4×2 for v = 8.
func ShapesForVolume(v int) []Shape { return arch.ShapesForVolume(v) }

// Resources bounds device concurrency during scheduling.
type Resources = schedule.Resources

// ScheduleOptions configures the list scheduler.
type ScheduleOptions = schedule.Options

// ScheduleResult is a scheduling result (start times, binding, Gantt).
type ScheduleResult = schedule.Result

// Schedule runs resource-constrained list scheduling on the assay.
func Schedule(a *Assay, opts ScheduleOptions) (*ScheduleResult, error) {
	return schedule.List(a, opts)
}

// PlaceConfig tunes the dynamic-device mapper.
type PlaceConfig = place.Config

// PlaceMode selects the mapping algorithm.
type PlaceMode = place.Mode

// Mapping algorithms.
const (
	// RollingHorizon (default) solves the paper's ILP over creation-order
	// batches — tractable on all benchmarks with the built-in solver.
	RollingHorizon = place.RollingHorizon
	// MonolithicILP solves the paper's single ILP over all operations.
	MonolithicILP = place.Monolithic
	// GreedyPlace is the constructive heuristic (ablation baseline).
	GreedyPlace = place.Greedy
	// AnnealedPlace marks mappings produced by the simulated-annealing
	// backend (select it via Options.Backends, not PlaceConfig.Mode).
	AnnealedPlace = place.Annealed
)

// Backend names one mapper strategy of the anytime backend portfolio:
// list two or more in Options.Backends to race full pipelines under one
// deadline and keep the best result, deterministically.
type Backend = core.Backend

// Portfolio backends, in canonical priority order.
const (
	// BackendILP is the paper's exact mapper.
	BackendILP = core.BackendILP
	// BackendGreedy is the constructive multi-start heuristic.
	BackendGreedy = core.BackendGreedy
	// BackendAnneal is the seeded simulated-annealing mapper.
	BackendAnneal = core.BackendAnneal
)

// Backends returns the canonical backend list in priority order.
func Backends() []Backend { return core.Backends() }

// ParseBackends parses a comma-separated backend list in priority order
// ("ilp,greedy,anneal"); "" and "none" mean no portfolio.
func ParseBackends(s string) ([]Backend, error) { return core.ParseBackends(s) }

// AnnealOptions tunes the simulated-annealing backend; zero fields mean
// the engine defaults. The seed fully determines the annealed mapping.
type AnnealOptions = core.AnnealOptions

// RaceReport is the outcome of an anytime portfolio race, one lane per
// backend (Result.Race).
type RaceReport = core.RaceReport

// RaceLane is one backend's outcome within a race.
type RaceLane = core.RaceLane

// Options configures Synthesize.
type Options = core.Options

// Result is a complete synthesis result with both evaluation settings.
type Result = core.Result

// Trace records hierarchical spans and a metrics registry across synthesis
// runs; attach one via Options.Trace (or Table1RowOptions.Trace). Export
// with its WriteText, WriteJSONL and WriteChromeTrace methods — the last
// loads into chrome://tracing and Perfetto. Tracing never changes results;
// a nil Trace costs nothing.
type Trace = obs.Trace

// NewTrace returns an empty trace ready to record runs.
func NewTrace() *Trace { return obs.New() }

// MetricsSnapshot is a point-in-time JSON-marshalable copy of a trace's
// metrics registry, obtained via trace.Metrics().Snapshot().
type MetricsSnapshot = obs.Snapshot

// Progress is one live snapshot of a running synthesis: active phase,
// per-phase wall-clock, B&B incumbent/bound/gap and routing tallies.
// Obtain a stream via trace.EnableProgress().Subscribe, or let a
// DebugServer expose it over HTTP.
type Progress = obs.Progress

// DebugServer is the embedded debug/metrics HTTP server: /metrics
// (Prometheus exposition), /progress (SSE), /debug/pprof and /debug/vars.
type DebugServer = export.Server

// Serve starts a DebugServer on addr over the trace, enabling its live
// progress bus. Close the returned server when the run ends.
func Serve(addr string, tr *Trace) (*DebugServer, error) { return export.Serve(addr, tr) }

// SinkSet collects deferred trace exports (path + writer) and flushes
// them together, attempting every sink and surfacing the first write or
// close error instead of swallowing it.
type SinkSet = obs.SinkSet

// LogProgress streams live progress snapshots to w as JSON lines until
// the returned stop function is called; stop reports the first
// encode/write error. Validate the file with tools/tracecheck -progress.
func LogProgress(tr *Trace, w io.Writer) (stop func() error) { return export.LogProgress(tr, w) }

// Profiler captures continuous profiles: a whole-run CPU profile plus
// per-phase heap snapshots (the -profile-dir flag of the cmds).
type Profiler = export.Profiler

// StartProfiler begins continuous-profile capture into dir; Close it when
// the run ends.
func StartProfiler(dir string, tr *Trace) (*Profiler, error) { return export.StartProfiler(dir, tr) }

// Synthesize runs the full reliability-aware synthesis (Algorithm 1):
// scheduling, dynamic-device mapping, routing, and actuation simulation.
func Synthesize(a *Assay, opts Options) (*Result, error) {
	return core.Synthesize(a, opts)
}

// SynthesizeCtx is Synthesize with cancellation: every phase checks ctx and
// a cancelled run returns an error matching ErrDeadline.
func SynthesizeCtx(ctx context.Context, a *Assay, opts Options) (*Result, error) {
	return core.SynthesizeCtx(ctx, a, opts)
}

// Synthesis error taxonomy: match with errors.Is regardless of which phase
// produced the error (the phase is recoverable via SynthesisPhase).
var (
	// ErrInfeasible marks instances no mapper rung could place.
	ErrInfeasible = synerr.ErrInfeasible
	// ErrDeadline marks runs cut short by context cancellation or expiry.
	ErrDeadline = synerr.ErrDeadline
	// ErrUnroutable marks transports with no admissible path.
	ErrUnroutable = synerr.ErrUnroutable
)

// SynthesisPhase extracts the pipeline phase ("schedule", "place", "milp",
// "route") an error originated in, or "" for untyped errors.
func SynthesisPhase(err error) string { return synerr.Phase(err) }

// FaultKind classifies valve defects.
type FaultKind = fault.Kind

// Valve defect kinds.
const (
	// StuckClosed valves never open: obstacles to chambers and paths.
	StuckClosed = fault.StuckClosed
	// StuckOpen valves never close: unusable as ring, wall or path cells.
	StuckOpen = fault.StuckOpen
	// WearOut valves fail after a bounded number of actuations.
	WearOut = fault.WearOut
)

// Fault is one defective valve.
type Fault = fault.Fault

// FaultSet is an immutable per-chip defect map; nil means a healthy chip.
type FaultSet = fault.Set

// NewFaultSet builds a defect map for a gridSize×gridSize chip.
func NewFaultSet(gridSize int, faults ...Fault) *FaultSet {
	return fault.NewSet(gridSize, faults...)
}

// FaultGenOptions parameterises GenerateFaults.
type FaultGenOptions = fault.GenOptions

// GenerateFaults draws a random defect set, deterministic in the seed.
func GenerateFaults(seed int64, opts FaultGenOptions) *FaultSet {
	return fault.Generate(seed, opts)
}

// ParseFaults reads a defect set in the fault-spec text format
// ("grid N", then "stuck-closed X Y" / "stuck-open X Y" /
// "wear-out X Y THRESHOLD" lines; '#' comments).
func ParseFaults(r io.Reader) (*FaultSet, error) { return fault.Parse(r) }

// WriteFaults serialises a defect set in the fault-spec text format.
func WriteFaults(w io.Writer, fs *FaultSet) error { return fault.Write(w, fs) }

// Degradation is the structured report of a degraded synthesis: the ladder
// rung accepted, failed attempts, unrouted nets, dropped operations and
// wear-out promotions. Nil on Result.Degradation means a nominal run.
type Degradation = core.Degradation

// DegradationLevel orders the graceful-degradation ladder.
type DegradationLevel = core.DegradationLevel

// Degradation levels, in escalation order.
const (
	DegradeNone    = core.DegradeNone
	DegradeRelaxed = core.DegradeRelaxed
	DegradeGreedy  = core.DegradeGreedy
	DegradePartial = core.DegradePartial
)

// FailedNet is one transport a degraded result could not route.
type FailedNet = core.FailedNet

// CampaignOptions parameterises a fault-injection campaign.
type CampaignOptions = report.CampaignOptions

// Campaign aggregates a fault-injection campaign's outcomes.
type Campaign = report.Campaign

// RunCampaign synthesizes the case repeatedly against seeded random defect
// sets and reports success rate, degradation levels and metric yield.
func RunCampaign(c Case, policy int, opts CampaignOptions) (*Campaign, error) {
	return report.RunCampaign(c, policy, opts)
}

// RenderCampaign formats a campaign as a one-line text summary.
func RenderCampaign(c *Campaign) string { return report.RenderCampaign(c) }

// TraditionalDesign is the dedicated-device baseline of the paper.
type TraditionalDesign = baseline.Design

// CostModel prices the valves of a traditional design.
type CostModel = baseline.CostModel

// DefaultCost is the calibrated traditional-layout cost model.
var DefaultCost = baseline.DefaultCost

// Traditional evaluates the traditional design of the case under the given
// policy index (1-based) with optimal operation binding.
func Traditional(c Case, policy int, cost CostModel) (*TraditionalDesign, error) {
	return baseline.Traditional(c, policy, cost)
}

// Policies derives the mixer policies p1..pn for a case.
func Policies(c Case, n int) []map[int]int { return baseline.Policies(c, n) }

// Table1Row is one line of the paper's Table 1.
type Table1Row = report.Row

// Table1RowOptions tunes the synthesis side of a Table 1 row.
type Table1RowOptions = report.RowOptions

// EvaluateRow computes one benchmark × policy cell of Table 1.
func EvaluateRow(c Case, policy int, opts Table1RowOptions) (*Table1Row, error) {
	return report.Table1Row(c, policy, opts)
}

// EvaluateRowCtx is EvaluateRow with cancellation: an interrupted run
// returns promptly with an error matching ErrDeadline.
func EvaluateRowCtx(ctx context.Context, c Case, policy int, opts Table1RowOptions) (*Table1Row, error) {
	return report.Table1RowCtx(ctx, c, policy, opts)
}

// Table1 evaluates all four benchmarks under policies p1..p3.
func Table1(opts Table1RowOptions) ([]*Table1Row, error) { return report.Table1(opts) }

// Table1Ctx is Table1 with cancellation: once ctx is cut, pending cells
// are skipped and in-flight ones return early.
func Table1Ctx(ctx context.Context, opts Table1RowOptions) ([]*Table1Row, error) {
	return report.Table1Ctx(ctx, opts)
}

// RenderTable1 formats rows as a text table.
func RenderTable1(rows []*Table1Row) string { return report.Render(rows) }

// Table1Averages returns the mean improvement percentages.
func Table1Averages(rows []*Table1Row) (imp1, imp2, impV float64) {
	return report.Averages(rows)
}

// AblationOptions tunes the backend-ablation sweep: every instance is
// synthesised once per backend under the same deadline.
type AblationOptions = report.AblationOptions

// AblationRow is one instance's ablation sweep across the backends.
type AblationRow = report.AblationRow

// AblationCell is one backend's outcome on one ablation instance.
type AblationCell = report.AblationCell

// Ablation runs the backend-ablation sweep (the BENCH_ablation.json
// artefact behind tools/benchgate -ablation).
func Ablation(ctx context.Context, opts AblationOptions) ([]*AblationRow, error) {
	return report.Ablation(ctx, opts)
}

// FleetConfig parameterises a closed-loop fleet wear campaign: N chips
// executing a seeded stream of assay requests with per-valve cumulative
// actuation telemetry driving re-synthesis (internal/fleet).
type FleetConfig = fleet.Config

// FleetWorkload is one assay in a fleet campaign's request mix.
type FleetWorkload = fleet.Workload

// FleetResult compares a static-mapping campaign against the closed-loop
// collector→analyzer→optimizer→actuator control loop on the identical
// seeded request stream (the BENCH_fleet.json artefact behind
// tools/benchgate -fleet).
type FleetResult = fleet.Result

// FleetModeResult aggregates one campaign mode (static or closed-loop).
type FleetModeResult = fleet.ModeResult

// FleetChipState is one chip's persisted wear telemetry.
type FleetChipState = fleet.ChipState

// RunFleet executes a fleet wear campaign in both modes and returns the
// comparison plus the final per-chip telemetry (static first, then
// closed-loop), bit-identically reproducible from FleetConfig.Seed.
func RunFleet(ctx context.Context, cfg FleetConfig) (*FleetResult, [][]*FleetChipState, error) {
	return fleet.Run(ctx, cfg)
}

// SaveFleetTelemetry persists per-chip cumulative actuation counters in
// the fleet-telemetry text format.
func SaveFleetTelemetry(w io.Writer, chips []*FleetChipState) error {
	return fleet.Save(w, chips)
}

// LoadFleetTelemetry parses telemetry written by SaveFleetTelemetry.
func LoadFleetTelemetry(r io.Reader) ([]*FleetChipState, error) {
	return fleet.Load(r)
}

// Role is what a virtual valve is doing at one instant (the paper's
// valve-role-changing concept made inspectable).
type Role = core.Role

// Valve roles.
const (
	RoleUnused  = core.Unused
	RoleClosed  = core.Closed
	RoleWall    = core.WallRole
	RoleControl = core.ControlRole
	RoleStorage = core.StorageRole
	RolePump    = core.PumpRole
)

// Violation is a broken design rule found by CheckResult.
type Violation = sim.Violation

// CheckResult replays a synthesis result and verifies the physical
// invariants of the paper's model (non-overlap, storage free space,
// routing obstacles, fluid conservation, metric consistency).
func CheckResult(res *Result) []Violation { return sim.Check(res) }

// ConformanceReport is the full audit of a synthesis result: every checked
// invariant, every violation, and the paper constraint each rule encodes.
type ConformanceReport = verify.Report

// Invariant is one entry of the conformance catalogue.
type Invariant = verify.Invariant

// InvariantCatalogue lists every invariant the conformance audit checks,
// with the paper constraint number each rule encodes.
func InvariantCatalogue() []Invariant { return verify.Catalogue }

// Verify audits a synthesis result against the complete invariant
// catalogue, re-deriving schedules, windows, storage timelines, flow
// conservation, events and actuation counts from first principles.
// CheckResult is the flat-slice view of the same audit.
func Verify(res *Result) *ConformanceReport { return verify.Conformance(res) }

// ResultFingerprint returns a SHA-256 digest over every decision of the
// result (schedule, placement, routing, events, metrics). Two runs are
// bit-identical — the parallel engine's determinism contract — exactly when
// their fingerprints are equal.
func ResultFingerprint(res *Result) string { return verify.Fingerprint(res) }

// WearModel turns actuation counts into lifetime estimates.
type WearModel = wear.Model

// ChipActuationCounts flattens a result's per-valve total actuations
// (setting 1), descending, dropping never-actuated valves.
func ChipActuationCounts(res *Result) []int {
	return wear.ChipCounts(res.ChipAt(-1, 1))
}

// TraditionalActuationCounts derives the per-valve profile of one assay
// execution on a traditional design.
func TraditionalActuationCounts(d *TraditionalDesign) []int {
	return wear.TraditionalProfile(d, DefaultCost)
}

// WearBalance returns how evenly actuations spread over the used valves
// (mean/max in (0,1]; the valve-role-changing concept pushes this up).
func WearBalance(counts []int) float64 { return wear.Balance(counts) }

// ControlAnalysis summarises the control-layer effort of a result.
type ControlAnalysis = control.Analysis

// AnalyzeControl counts the control pins a synthesized chip needs: valves
// with identical switching traces share one pressure source.
func AnalyzeControl(res *Result) ControlAnalysis { return control.Analyze(res) }

// ControlLayout is a routed control layer: pins on the chip boundary and
// channel trees reaching every valve of each pin group.
type ControlLayout = control.Layout

// RouteControlLayer physically routes the control layer for an analysis.
func RouteControlLayer(res *Result, a ControlAnalysis) ControlLayout {
	return control.RouteControl(res, a)
}

// ContaminationReport summarises cross-contamination risk (residue of one
// fluid joining an unrelated mixture) — the restriction the paper's
// conclusion defers to future work.
type ContaminationReport = contam.Report

// AnalyzeContamination reconstructs per-valve fluid occupancy and flags
// risky successions, with a wash-flush estimate.
func AnalyzeContamination(res *Result) ContaminationReport { return contam.Analyze(res) }

// WashPlan is a set of routed buffer flushes clearing contamination risks,
// priced in extra valve actuations.
type WashPlan = contam.WashPlan

// PlanWashes routes a flush before every risky transport time and reports
// the reliability cost of contamination-free operation.
func PlanWashes(res *Result) WashPlan { return contam.PlanWashes(res) }

// Speedup is one row of the execution-speedup experiment (the paper's
// future-work direction: dynamic devices also shorten the assay).
type Speedup = report.Speedup

// ExecutionSpeedup compares the policy-limited schedule against a fully
// parallel schedule realised with dynamic devices.
func ExecutionSpeedup(c Case, policy int) (*Speedup, error) {
	return report.ExecutionSpeedup(c, policy)
}

// RenderSpeedups formats execution-speedup rows.
func RenderSpeedups(rows []*Speedup) string { return report.RenderSpeedups(rows) }

// SVGOptions selects what WriteSVG draws.
type SVGOptions = svg.Options

// WriteSVG renders a synthesis result as a standalone SVG drawing: valve
// actuation heat map, device footprints, transport paths, chip ports, and
// optionally the routed control layer.
func WriteSVG(w io.Writer, res *Result, opts SVGOptions) error {
	return svg.Write(w, res, opts)
}

// RandomAssayOptions parameterises RandomAssay.
type RandomAssayOptions = assays.RandomOptions

// RandomAssay generates a pseudo-random valid bioassay (deterministic in
// the seed) — useful for stress-testing flows and custom experiments.
func RandomAssay(seed int64, opts RandomAssayOptions) *Assay {
	return assays.Random(seed, opts)
}
