module mfsynth

go 1.22
