package mfsynth

import (
	"reflect"
	"testing"
	"time"
)

// TestParallelSynthesisMatchesSerial runs the full synthesis of every
// Table 1 case under p1 with Workers 1 and Workers 4 and asserts the two
// results are identical in every reported metric and placement — the
// deterministic-merge contract of the parallel engine, end to end. PCR uses
// the rolling-horizon mapper (exercising the parallel branch-and-bound);
// the larger cases use the greedy mapper to keep -race runs short, matching
// the bench harness's mode choices.
func TestParallelSynthesisMatchesSerial(t *testing.T) {
	modes := map[string]PlaceMode{
		"PCR":                   RollingHorizon,
		"MixingTree":            GreedyPlace,
		"InterpolatingDilution": GreedyPlace,
		"ExponentialDilution":   GreedyPlace,
	}
	for _, name := range CaseNames() {
		c, err := CaseByName(name)
		if err != nil {
			t.Fatal(err)
		}
		des, err := Traditional(c, 1, DefaultCost)
		if err != nil {
			t.Fatal(err)
		}
		run := func(workers int) *Result {
			// A node cap replaces the default 20 s wall-clock deadline: a
			// binding deadline is timing-dependent (it fires under -race,
			// where everything is slower), a node cap is deterministic.
			res, err := Synthesize(c.Assay, Options{
				Policy: Resources{Mixers: des.Mixers, Detectors: c.Detectors},
				Place: PlaceConfig{Grid: c.GridSize, Mode: modes[name],
					MaxNodes: 64, SolveTimeout: time.Hour},
				Workers: workers,
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			return res
		}
		serial, parallel := run(1), run(4)

		type metrics struct {
			VsMax1, VsPump1, VsMax2, VsPump2 int
			UsedValves, FailedRoutes         int
			MaxPumpOps                       int
		}
		ms := metrics{serial.VsMax1, serial.VsPump1, serial.VsMax2, serial.VsPump2,
			serial.UsedValves, serial.FailedRoutes, serial.Mapping.MaxPumpOps}
		mp := metrics{parallel.VsMax1, parallel.VsPump1, parallel.VsMax2, parallel.VsPump2,
			parallel.UsedValves, parallel.FailedRoutes, parallel.Mapping.MaxPumpOps}
		if ms != mp {
			t.Errorf("%s: metrics %+v (serial) vs %+v (parallel)", name, ms, mp)
		}
		if serial.Mapping.Stats != parallel.Mapping.Stats {
			t.Errorf("%s: stats %+v (serial) vs %+v (parallel)",
				name, serial.Mapping.Stats, parallel.Mapping.Stats)
		}
		if len(serial.Mapping.Placements) != len(parallel.Mapping.Placements) {
			t.Fatalf("%s: %d vs %d placements",
				name, len(serial.Mapping.Placements), len(parallel.Mapping.Placements))
		}
		for op, pl := range serial.Mapping.Placements {
			if parallel.Mapping.Placements[op] != pl {
				t.Errorf("%s: op %d placed at %v (serial) vs %v (parallel)",
					name, op, pl, parallel.Mapping.Placements[op])
			}
		}
	}
}

// TestTable1WorkersMatchesSerial evaluates Table 1 (greedy mapper, p1..p3)
// with the cell-level fan-out and compares every metric column against the
// serial evaluation.
func TestTable1WorkersMatchesSerial(t *testing.T) {
	serial, err := Table1(Table1RowOptions{Mode: GreedyPlace, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Table1(Table1RowOptions{Mode: GreedyPlace, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("%d vs %d rows", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := *serial[i], *parallel[i]
		// Wall-clock (total and per-phase) differs, everything else may not.
		s.Runtime, p.Runtime = 0, 0
		s.Phases, p.Phases = nil, nil
		if !reflect.DeepEqual(s, p) {
			t.Errorf("row %d: %+v (serial) vs %+v (parallel)", i, s, p)
		}
	}
}
